//! The simulated GPU device.
//!
//! Models the execution semantics that the paper's policies exploit:
//!
//! * **in-order streams** — operations on one stream serialise,
//! * **engine overlap** — the compute engine and the (single) copy engine
//!   run concurrently, so asynchronous copies overlap kernels (§V-A2),
//! * **asynchronous issue** — the host pays only a small issue cost and
//!   blocks at explicit synchronisation points (pageable copies are
//!   synchronous, as in CUDA),
//! * **device memory limits** — allocation fails beyond the configured
//!   capacity (4 GB on the T10).
//!
//! Numerics are computed **for real in f32** via `mf-dense` the moment an
//! operation is enqueued; only *time* is simulated. This is valid as long
//! as the caller orders dependent operations program-order on streams —
//! exactly the discipline a correct CUDA program follows.

use crate::calib::{exact_ops, GpuConfig, KernelKind};
use crate::host::HostClock;
use crate::memory::{DevBuf, DevMat, DeviceMemory, DeviceOom, InvalidBuffer};
use crate::profile::{Component, GpuUtilization, ProfileRecord};
use mf_dense::potrf_unblocked;
use mf_dense::{gemm, syrk_lower, trsm_right_lower_trans, Transpose};

/// Handle to an in-order command stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stream(usize);

/// A recorded event: the stream-tail time at recording.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event(pub f64);

/// Transfer mode for copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyMode {
    /// Host blocks until the transfer completes (pageable memory).
    Sync,
    /// Host continues immediately (requires pinned memory in CUDA; here the
    /// caller asserts pinned-ness via the `pinned` flag).
    Async,
}

/// The simulated device.
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    mem: DeviceMemory,
    streams: Vec<f64>,
    compute_free: f64,
    copy_free: f64,
    /// Accumulated busy time of the compute engine since the last clock
    /// reset (Σ kernel durations — the engine never overlaps with itself).
    compute_busy: f64,
    /// Accumulated busy time of the single copy engine.
    copy_busy: f64,
    /// Time at which the dedicated peer (d2d) engine frees up. Peer copies
    /// serialise on this engine on *both* endpoint devices, independently of
    /// the PCIe copy engine — a p2p transfer overlaps h2d/d2h traffic.
    peer_free: f64,
    /// Accumulated busy time of the peer engine.
    peer_busy: f64,
    /// Bytes received over the peer link (accounted on the destination).
    peer_bytes: usize,
    /// Accumulated busy time charged through each stream (kernels + copies
    /// issued on it), indexed like `streams`.
    stream_busy: Vec<f64>,
    records: Vec<ProfileRecord>,
    recording: bool,
}

impl Gpu {
    /// A fresh device with one default stream (stream 0).
    pub fn new(cfg: GpuConfig) -> Self {
        let mem = DeviceMemory::new(cfg.mem_bytes);
        Gpu {
            cfg,
            mem,
            streams: vec![0.0],
            compute_free: 0.0,
            copy_free: 0.0,
            compute_busy: 0.0,
            copy_busy: 0.0,
            peer_free: 0.0,
            peer_busy: 0.0,
            peer_bytes: 0,
            stream_busy: vec![0.0],
            records: Vec::new(),
            recording: false,
        }
    }

    /// Device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The default stream.
    pub fn default_stream(&self) -> Stream {
        Stream(0)
    }

    /// Create an additional stream.
    pub fn create_stream(&mut self) -> Stream {
        self.streams.push(0.0);
        self.stream_busy.push(0.0);
        Stream(self.streams.len() - 1)
    }

    /// Get stream `idx`, creating intermediate streams as needed (so callers
    /// can use stable stream ids across many operations without leaking a
    /// new stream per call).
    pub fn stream(&mut self, idx: usize) -> Stream {
        while self.streams.len() <= idx {
            self.streams.push(0.0);
            self.stream_busy.push(0.0);
        }
        Stream(idx)
    }

    /// Enable/disable profiling.
    pub fn set_recording(&mut self, on: bool) {
        self.recording = on;
    }

    /// Enable/disable virtual (timing-only) mode: allocations track bytes
    /// without backing storage and kernels/copies charge time without
    /// touching data. Used to estimate policy times on fronts far too large
    /// to compute for real (the paper's Figure 12/13/14 maps go to
    /// m = k = 10000).
    pub fn set_virtual(&mut self, on: bool) {
        self.mem.virtual_mode = on;
    }

    /// Is the device in virtual (timing-only) mode?
    pub fn is_virtual(&self) -> bool {
        self.mem.virtual_mode
    }

    /// Drain profile records.
    pub fn take_records(&mut self) -> Vec<ProfileRecord> {
        std::mem::take(&mut self.records)
    }

    /// Bytes currently allocated on the device.
    pub fn mem_used(&self) -> usize {
        self.mem.used()
    }

    /// Device memory capacity in bytes.
    pub fn mem_capacity(&self) -> usize {
        self.mem.capacity()
    }

    /// Length (elements) of an allocated buffer.
    pub fn buf_len(&self, buf: crate::memory::DevBuf) -> Result<usize, InvalidBuffer> {
        self.mem.len(buf)
    }

    /// Peak bytes allocated.
    pub fn mem_peak(&self) -> usize {
        self.mem.peak()
    }

    /// Allocate a device buffer of `len` f32 elements (zero-initialised).
    pub fn alloc(&mut self, len: usize) -> Result<DevBuf, DeviceOom> {
        self.mem.alloc(len)
    }

    /// Free a device buffer. Double frees and stale handles are reported as
    /// [`InvalidBuffer`] rather than aborting the simulation.
    pub fn free(&mut self, buf: DevBuf) -> Result<(), InvalidBuffer> {
        self.mem.free(buf)
    }

    /// Read device data (test/debug helper — performs no timing).
    pub fn peek(&self, buf: DevBuf) -> Result<&[f32], InvalidBuffer> {
        self.mem.get(buf)
    }

    /// Record an event on `stream`.
    pub fn record_event(&self, stream: Stream) -> Event {
        Event(self.streams[stream.0])
    }

    /// Make `stream` wait for `event`.
    pub fn wait_event(&mut self, stream: Stream, event: Event) {
        let tail = &mut self.streams[stream.0];
        if event.0 > *tail {
            *tail = event.0;
        }
    }

    /// Non-blocking event query: has `event` completed by host time `at`?
    /// Advances nothing — the pipelined dispatch layer uses this to decide
    /// whether a staging generation can be recycled without stalling.
    pub fn event_query(&self, event: Event, at: f64) -> bool {
        event.0 <= at
    }

    /// Block the host until `event` completes — a targeted wait on one
    /// dependency, unlike [`Self::sync_all`] which drains every engine.
    /// This is the primitive that lets a parent front's extend-add wait on
    /// exactly its child's d2h completion.
    pub fn wait_event_host(&self, event: Event, host: &mut HostClock) {
        host.sync_to(event.0);
    }

    /// Block the host until `stream` drains.
    pub fn sync_stream(&mut self, stream: Stream, host: &mut HostClock) {
        host.sync_to(self.streams[stream.0]);
    }

    /// Block the host until the whole device drains.
    pub fn sync_all(&mut self, host: &mut HostClock) {
        let t = self.streams.iter().fold(0.0f64, |a, &b| a.max(b));
        host.sync_to(t.max(self.compute_free).max(self.copy_free).max(self.peer_free));
    }

    /// Completion time of the latest work on `stream` (for schedulers).
    pub fn stream_tail(&self, stream: Stream) -> f64 {
        self.streams[stream.0]
    }

    /// Accumulated compute-engine busy time since the last clock reset.
    pub fn compute_busy(&self) -> f64 {
        self.compute_busy
    }

    /// Accumulated copy-engine busy time since the last clock reset.
    pub fn copy_busy(&self) -> f64 {
        self.copy_busy
    }

    /// Accumulated peer-engine busy time since the last clock reset.
    pub fn peer_busy(&self) -> f64 {
        self.peer_busy
    }

    /// Bytes received over the peer link since the last clock reset.
    pub fn peer_bytes(&self) -> usize {
        self.peer_bytes
    }

    /// Accumulated busy time of work issued on `stream`.
    pub fn stream_busy(&self, stream: Stream) -> f64 {
        self.stream_busy[stream.0]
    }

    /// Engine busy/idle accounting over a span of `span` simulated seconds
    /// (typically the run's makespan).
    pub fn utilization(&self, span: f64) -> GpuUtilization {
        GpuUtilization { compute_busy: self.compute_busy, copy_busy: self.copy_busy, span, gpus: 1 }
    }

    // ----- transfers ------------------------------------------------------

    /// Copy a `rows × cols` column-major block from host `src` (leading
    /// dimension `src_ld`) into the device view `dst`.
    #[allow(clippy::too_many_arguments)]
    pub fn h2d(
        &mut self,
        stream: Stream,
        dst: DevMat,
        rows: usize,
        cols: usize,
        src: &[f32],
        src_ld: usize,
        pinned: bool,
        mode: CopyMode,
        host: &mut HostClock,
    ) {
        // Data moves now (eager numerics); skipped entirely in virtual mode.
        // An invalid handle skips the data movement (debug builds assert) but
        // still charges the simulated transfer time so clocks stay plausible.
        if !self.mem.virtual_mode {
            match self.mem.get_mut(dst.buf) {
                Ok(data) => {
                    for j in 0..cols {
                        let s = &src[j * src_ld..j * src_ld + rows];
                        let doff = dst.off + j * dst.ld;
                        data[doff..doff + rows].copy_from_slice(s);
                    }
                }
                Err(e) => debug_assert!(false, "h2d: {e}"),
            }
        }
        self.schedule_copy(stream, rows * cols * 4, pinned, mode, Component::CopyH2D, host);
    }

    /// Copy a `rows × cols` block from the device view `src` into host `dst`
    /// (leading dimension `dst_ld`).
    #[allow(clippy::too_many_arguments)]
    pub fn d2h(
        &mut self,
        stream: Stream,
        src: DevMat,
        rows: usize,
        cols: usize,
        dst: &mut [f32],
        dst_ld: usize,
        pinned: bool,
        mode: CopyMode,
        host: &mut HostClock,
    ) {
        if !self.mem.virtual_mode {
            match self.mem.get(src.buf) {
                Ok(data) => {
                    for j in 0..cols {
                        let soff = src.off + j * src.ld;
                        dst[j * dst_ld..j * dst_ld + rows]
                            .copy_from_slice(&data[soff..soff + rows]);
                    }
                }
                Err(e) => debug_assert!(false, "d2h: {e}"),
            }
        }
        self.schedule_copy(stream, rows * cols * 4, pinned, mode, Component::CopyD2H, host);
    }

    fn schedule_copy(
        &mut self,
        stream: Stream,
        bytes: usize,
        pinned: bool,
        mode: CopyMode,
        component: Component,
        host: &mut HostClock,
    ) {
        let dur = self.cfg.pcie.time(bytes, pinned);
        let start = host.now().max(self.streams[stream.0]).max(self.copy_free);
        let end = start + dur;
        self.streams[stream.0] = end;
        self.copy_free = end;
        self.copy_busy += dur;
        self.stream_busy[stream.0] += dur;
        match mode {
            CopyMode::Sync => host.sync_to(end),
            CopyMode::Async => host.charge_issue(),
        }
        if self.recording {
            self.records.push(ProfileRecord { component, ops: 0.0, bytes, start, end });
        }
    }

    // ----- kernels --------------------------------------------------------

    /// Pack a `rows × cols` region of a device view into a dense scratch
    /// vector (simulation-internal; carries no simulated cost).
    fn pack(&self, m: DevMat, rows: usize, cols: usize) -> Result<Vec<f32>, InvalidBuffer> {
        let data = self.mem.get(m.buf)?;
        let mut out = vec![0.0f32; rows * cols];
        for j in 0..cols {
            let off = m.off + j * m.ld;
            out[j * rows..(j + 1) * rows].copy_from_slice(&data[off..off + rows]);
        }
        Ok(out)
    }

    fn schedule_kernel(
        &mut self,
        stream: Stream,
        kind: KernelKind,
        m: usize,
        n: usize,
        k: usize,
        host: &mut HostClock,
    ) {
        let eff = self.cfg.effective_ops(kind, m, n, k);
        let dur = self.cfg.kernels.curve(kind).time(eff);
        let start = host.now().max(self.streams[stream.0]).max(self.compute_free);
        let end = start + dur;
        self.streams[stream.0] = end;
        self.compute_free = end;
        self.compute_busy += dur;
        self.stream_busy[stream.0] += dur;
        host.charge_issue();
        if self.recording {
            self.records.push(ProfileRecord {
                component: Component::GpuKernel(kind),
                ops: exact_ops(kind, m, n, k),
                bytes: 0,
                start,
                end,
            });
        }
    }

    /// CUBLAS-like `strsm` (right, lower, transposed, non-unit): solve
    /// `X·Lᵀ = B` where `l` is the `k × k` lower factor and `b` is `m × k`,
    /// overwritten by `X`.
    pub fn trsm(
        &mut self,
        stream: Stream,
        l: DevMat,
        k: usize,
        b: DevMat,
        m: usize,
        host: &mut HostClock,
    ) {
        if !self.mem.virtual_mode {
            let res = self.pack(l, k, k).and_then(|lpack| {
                let data = self.mem.get_mut(b.buf)?;
                trsm_right_lower_trans(m, k, &lpack, k, &mut data[b.off..], b.ld);
                Ok(())
            });
            debug_assert!(res.is_ok(), "trsm: {:?}", res.err());
        }
        self.schedule_kernel(stream, KernelKind::Trsm, m, 0, k, host);
    }

    /// CUBLAS-like `ssyrk` (lower, no-trans, α = −1, β = 1):
    /// `C ← C − A·Aᵀ` with `a` `n × k` and `c` `n × n` (lower).
    pub fn syrk(
        &mut self,
        stream: Stream,
        a: DevMat,
        c: DevMat,
        n: usize,
        k: usize,
        host: &mut HostClock,
    ) {
        if !self.mem.virtual_mode {
            let res = self.pack(a, n, k).and_then(|apack| {
                let data = self.mem.get_mut(c.buf)?;
                syrk_lower(n, k, -1.0f32, &apack, n, 1.0, &mut data[c.off..], c.ld);
                Ok(())
            });
            debug_assert!(res.is_ok(), "syrk: {:?}", res.err());
        }
        self.schedule_kernel(stream, KernelKind::Syrk, 0, n, k, host);
    }

    /// CUBLAS-like `sgemm` (`C ← C − A·Bᵀ`): `a` is `m × k`, `b` is `n × k`,
    /// `c` is `m × n`.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_nt(
        &mut self,
        stream: Stream,
        a: DevMat,
        b: DevMat,
        c: DevMat,
        m: usize,
        n: usize,
        k: usize,
        host: &mut HostClock,
    ) {
        if !self.mem.virtual_mode {
            let res = self.pack(a, m, k).and_then(|apack| {
                let bpack = self.pack(b, n, k)?;
                let data = self.mem.get_mut(c.buf)?;
                gemm(
                    Transpose::No,
                    Transpose::Yes,
                    m,
                    n,
                    k,
                    -1.0f32,
                    &apack,
                    m,
                    &bpack,
                    n,
                    1.0,
                    &mut data[c.off..],
                    c.ld,
                );
                Ok(())
            });
            debug_assert!(res.is_ok(), "gemm_nt: {:?}", res.err());
        }
        self.schedule_kernel(stream, KernelKind::Gemm, m, n, k, host);
    }

    /// The lightweight on-device `w × w` Cholesky kernel of §V-A1.
    /// Returns the failing column on a non-positive pivot.
    pub fn panel_potrf(
        &mut self,
        stream: Stream,
        a: DevMat,
        n: usize,
        host: &mut HostClock,
    ) -> Result<(), usize> {
        let res = if self.mem.virtual_mode {
            Ok(())
        } else {
            match self.mem.get_mut(a.buf) {
                Ok(data) => potrf_unblocked(n, &mut data[a.off..], a.ld),
                Err(e) => {
                    debug_assert!(false, "panel_potrf: {e}");
                    Ok(())
                }
            }
        };
        self.schedule_kernel(stream, KernelKind::PanelPotrf, 0, n, 0, host);
        res.map_err(|e| e.column)
    }

    /// Reset all timelines to zero (memory contents and allocations kept).
    pub fn reset_clock(&mut self) {
        for s in &mut self.streams {
            *s = 0.0;
        }
        for b in &mut self.stream_busy {
            *b = 0.0;
        }
        self.compute_free = 0.0;
        self.copy_free = 0.0;
        self.compute_busy = 0.0;
        self.copy_busy = 0.0;
        self.peer_free = 0.0;
        self.peer_busy = 0.0;
        self.peer_bytes = 0;
        self.records.clear();
    }

    /// Peer (device-to-device) copy: move a `rows × cols` column-major block
    /// from `src_view` on `src` into `dst_view` on `dst` over the p2p link.
    ///
    /// Event-chained exactly like `h2d`/`d2h`: the transfer starts no
    /// earlier than `wait` (an event recorded on *any* device — events carry
    /// absolute simulated time, so cross-device waits compose), no earlier
    /// than either endpoint's peer engine frees up, and no earlier than the
    /// tail of the destination stream it is issued on. The destination
    /// stream's tail advances to the completion time, so later work issued
    /// there observes the copied data; the returned event marks completion
    /// and is forward-only (`≥ wait`).
    ///
    /// Data moves eagerly (a straight memcpy of what the source buffer holds
    /// now), matching the simulator's eager-numerics discipline; only time
    /// is scheduled. Traffic is accounted on the destination device.
    #[allow(clippy::too_many_arguments)]
    pub fn p2p(
        src: &mut Gpu,
        src_view: DevMat,
        dst: &mut Gpu,
        dst_stream: Stream,
        dst_view: DevMat,
        rows: usize,
        cols: usize,
        wait: Event,
        host: &mut HostClock,
    ) -> Event {
        if !src.mem.virtual_mode && !dst.mem.virtual_mode {
            let res = src.pack(src_view, rows, cols).and_then(|block| {
                let data = dst.mem.get_mut(dst_view.buf)?;
                for j in 0..cols {
                    let doff = dst_view.off + j * dst_view.ld;
                    data[doff..doff + rows].copy_from_slice(&block[j * rows..(j + 1) * rows]);
                }
                Ok(())
            });
            debug_assert!(res.is_ok(), "p2p: {:?}", res.err());
        }
        let bytes = rows * cols * 4;
        let bw = src.cfg.p2p_bw.min(dst.cfg.p2p_bw);
        let latency = src.cfg.pcie.latency.max(dst.cfg.pcie.latency);
        let dur = latency + bytes as f64 / bw;
        let start = host
            .now()
            .max(wait.0)
            .max(src.peer_free)
            .max(dst.peer_free)
            .max(dst.streams[dst_stream.0]);
        let end = start + dur;
        dst.streams[dst_stream.0] = end;
        dst.stream_busy[dst_stream.0] += dur;
        src.peer_free = end;
        dst.peer_free = end;
        src.peer_busy += dur;
        dst.peer_busy += dur;
        dst.peer_bytes += bytes;
        host.charge_issue();
        if dst.recording {
            dst.records.push(ProfileRecord {
                component: Component::CopyP2P,
                ops: 0.0,
                bytes,
                start,
                end,
            });
        }
        Event(end)
    }
}

/// A set of simulated devices sharing one host timeline — the multi-GPU
/// node. Devices keep fully independent clocks, streams and memories;
/// cross-device ordering flows only through events (absolute simulated
/// times, so a wait on a remote event is just a `max`) and through the
/// [`Gpu::p2p`] peer-copy primitive.
///
/// Slots are `Option<Gpu>` so a driver can [`DeviceSet::take`] a device out,
/// run the existing single-device dispatch machinery against it, and
/// [`DeviceSet::restore`] it — peer copies against the remaining devices
/// stay available throughout.
#[derive(Debug)]
pub struct DeviceSet {
    gpus: Vec<Option<Gpu>>,
}

impl DeviceSet {
    /// `n` fresh devices of the same configuration.
    pub fn uniform(cfg: GpuConfig, n: usize) -> Self {
        DeviceSet { gpus: (0..n).map(|_| Some(Gpu::new(cfg.clone()))).collect() }
    }

    /// Wrap existing devices (device 0 keeps its clocks and memory — the
    /// multi-GPU driver promotes the machine's device this way).
    pub fn from_gpus(gpus: Vec<Gpu>) -> Self {
        DeviceSet { gpus: gpus.into_iter().map(Some).collect() }
    }

    /// Number of device slots (taken or not).
    pub fn len(&self) -> usize {
        self.gpus.len()
    }

    /// Whether the set has no devices.
    pub fn is_empty(&self) -> bool {
        self.gpus.is_empty()
    }

    /// Shared access to device `i`. Panics if `i` is out of range or taken.
    pub fn device(&self, i: usize) -> &Gpu {
        self.gpus[i].as_ref().expect("device taken out of the set")
    }

    /// Exclusive access to device `i`. Panics if out of range or taken.
    pub fn device_mut(&mut self, i: usize) -> &mut Gpu {
        self.gpus[i].as_mut().expect("device taken out of the set")
    }

    /// Move device `i` out of the set (for running single-device drivers
    /// against it). Panics if already taken.
    pub fn take(&mut self, i: usize) -> Gpu {
        self.gpus[i].take().expect("device already taken")
    }

    /// Return a previously [`Self::take`]n device to slot `i`.
    pub fn restore(&mut self, i: usize, gpu: Gpu) {
        debug_assert!(self.gpus[i].is_none(), "restoring over a present device");
        self.gpus[i] = Some(gpu);
    }

    /// Split-borrow two distinct devices at once.
    pub fn pair_mut(&mut self, a: usize, b: usize) -> (&mut Gpu, &mut Gpu) {
        assert_ne!(a, b, "pair_mut needs two distinct devices");
        let (lo, hi) = (a.min(b), a.max(b));
        let (left, right) = self.gpus.split_at_mut(hi);
        let l = left[lo].as_mut().expect("device taken out of the set");
        let r = right[0].as_mut().expect("device taken out of the set");
        if a < b {
            (l, r)
        } else {
            (r, l)
        }
    }

    /// Peer copy between two devices of the set (see [`Gpu::p2p`]).
    #[allow(clippy::too_many_arguments)]
    pub fn p2p(
        &mut self,
        src: usize,
        src_view: DevMat,
        dst: usize,
        dst_stream: Stream,
        dst_view: DevMat,
        rows: usize,
        cols: usize,
        wait: Event,
        host: &mut HostClock,
    ) -> Event {
        let (s, d) = self.pair_mut(src, dst);
        Gpu::p2p(s, src_view, d, dst_stream, dst_view, rows, cols, wait, host)
    }

    /// Block the host until every present device drains.
    pub fn sync_all(&mut self, host: &mut HostClock) {
        for g in self.gpus.iter_mut().flatten() {
            g.sync_all(host);
        }
    }

    /// Per-device engine accounting over a common span.
    pub fn utilizations(&self, span: f64) -> Vec<GpuUtilization> {
        self.gpus
            .iter()
            .map(|g| g.as_ref().map(|g| g.utilization(span)).unwrap_or_default())
            .collect()
    }

    /// Total bytes moved over peer links (summed over receiving devices).
    pub fn peer_bytes(&self) -> usize {
        self.gpus.iter().flatten().map(|g| g.peer_bytes()).sum()
    }

    /// Reset every present device's clocks (memory kept).
    pub fn reset_clocks(&mut self) {
        for g in self.gpus.iter_mut().flatten() {
            g.reset_clock();
        }
    }

    /// Consume the set, yielding the present devices in slot order.
    pub fn into_gpus(self) -> Vec<Gpu> {
        self.gpus.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::{tesla_t10, xeon_5160_core};

    fn setup() -> (Gpu, HostClock) {
        (Gpu::new(tesla_t10()), HostClock::new(xeon_5160_core()))
    }

    #[test]
    fn h2d_d2h_roundtrip_with_strides() {
        let (mut gpu, mut host) = setup();
        let buf = gpu.alloc(100).unwrap();
        let s0 = gpu.default_stream();
        // 3×2 block into a ld=10 device view at offset 4.
        let src: Vec<f32> = vec![1., 2., 3., 4., 5., 6.];
        let dst_view = DevMat { buf, off: 4, ld: 10 };
        gpu.h2d(s0, dst_view, 3, 2, &src, 3, false, CopyMode::Sync, &mut host);
        let mut back = vec![0.0f32; 8];
        gpu.d2h(s0, dst_view, 3, 2, &mut back, 4, false, CopyMode::Sync, &mut host);
        assert_eq!(&back[0..3], &[1., 2., 3.]);
        assert_eq!(&back[4..7], &[4., 5., 6.]);
        assert!(host.now() > 0.0, "sync copies must cost time");
    }

    #[test]
    fn kernels_compute_correct_f32_math() {
        // Factor an SPD matrix entirely with device kernels and compare to
        // the host result: panel potrf + trsm + syrk on device views.
        let (mut gpu, mut host) = setup();
        let n = 24;
        let k = 8;
        let m = n - k;
        let a0 = mf_dense::matrix::random_spd::<f32>(n, 5);
        let buf = gpu.alloc(n * n).unwrap();
        let s0 = gpu.default_stream();
        let full = DevMat::whole(buf, n);
        gpu.h2d(s0, full, n, n, a0.as_slice(), n, false, CopyMode::Sync, &mut host);
        // Device-side blocked step.
        gpu.panel_potrf(s0, full, k, &mut host).unwrap();
        gpu.trsm(s0, full, k, full.offset(k, 0), m, &mut host);
        gpu.syrk(s0, full.offset(k, 0), full.offset(k, k), m, k, &mut host);
        gpu.sync_all(&mut host);
        // Host reference: one blocked step of potrf.
        let mut href = a0.clone();
        {
            let hs = href.as_mut_slice();
            potrf_unblocked(k, hs, n).unwrap();
            let diag: Vec<f32> = (0..k * k)
                .map(|i| {
                    let (r, c) = (i % k, i / k);
                    hs[r + c * n]
                })
                .collect();
            mf_dense::trsm_right_lower_trans(m, k, &diag, k, &mut hs[k..], n);
            let panel: Vec<f32> = (0..m * k)
                .map(|i| {
                    let (r, c) = (i % m, i / m);
                    hs[k + r + c * n]
                })
                .collect();
            mf_dense::syrk_lower(m, k, -1.0, &panel, m, 1.0, &mut hs[k + k * n..], n);
        }
        let dev = gpu.peek(buf).unwrap();
        for j in 0..n {
            for i in j..n {
                let d = dev[i + j * n];
                let h = href[(i, j)];
                assert!((d - h).abs() < 1e-4, "({i},{j}): dev {d} host {h}");
            }
        }
    }

    #[test]
    fn same_stream_serializes() {
        let (mut gpu, mut host) = setup();
        let buf = gpu.alloc(64 * 64).unwrap();
        let s0 = gpu.default_stream();
        let v = DevMat::whole(buf, 64);
        gpu.syrk(s0, v, v, 32, 16, &mut host);
        let t1 = gpu.stream_tail(s0);
        gpu.syrk(s0, v, v, 32, 16, &mut host);
        let t2 = gpu.stream_tail(s0);
        assert!(t2 > t1, "second kernel must start after the first");
    }

    #[test]
    fn copy_overlaps_compute_across_streams() {
        let (mut gpu, mut host) = setup();
        let s0 = gpu.default_stream();
        let s1 = gpu.create_stream();
        let buf = gpu.alloc(1 << 20).unwrap();
        let big = vec![0.5f32; 1 << 20];
        // Launch a long kernel on s0, then an async copy on s1: the copy
        // must start before the kernel ends (engines overlap).
        let v = DevMat::whole(buf, 1 << 10);
        gpu.set_recording(true);
        gpu.syrk(s0, v, v, 1 << 10, 512, &mut host);
        gpu.h2d(s1, v, 1 << 10, 512, &big, 1 << 10, true, CopyMode::Async, &mut host);
        gpu.sync_all(&mut host);
        let recs = gpu.take_records();
        assert_eq!(recs.len(), 2);
        let (kern, copy) = (&recs[0], &recs[1]);
        assert!(copy.start < kern.end, "copy should overlap the kernel");
    }

    #[test]
    fn two_copies_serialize_on_the_copy_engine() {
        let (mut gpu, mut host) = setup();
        let s0 = gpu.default_stream();
        let s1 = gpu.create_stream();
        let buf = gpu.alloc(1 << 18).unwrap();
        let data = vec![0.0f32; 1 << 18];
        gpu.set_recording(true);
        let v = DevMat::whole(buf, 1 << 9);
        gpu.h2d(s0, v, 1 << 9, 256, &data, 1 << 9, true, CopyMode::Async, &mut host);
        gpu.h2d(s1, v, 1 << 9, 256, &data, 1 << 9, true, CopyMode::Async, &mut host);
        let recs = gpu.take_records();
        assert!(recs[1].start >= recs[0].end - 1e-12, "single copy engine must serialise");
    }

    #[test]
    fn events_order_cross_stream_work() {
        let (mut gpu, mut host) = setup();
        let s0 = gpu.default_stream();
        let s1 = gpu.create_stream();
        let buf = gpu.alloc(4096).unwrap();
        let v = DevMat::whole(buf, 64);
        gpu.syrk(s0, v, v, 64, 32, &mut host);
        let ev = gpu.record_event(s0);
        gpu.wait_event(s1, ev);
        gpu.set_recording(true);
        gpu.syrk(s1, v, v, 8, 4, &mut host);
        let recs = gpu.take_records();
        assert!(recs[0].start >= ev.0 - 1e-12, "s1 kernel must wait for the event");
    }

    #[test]
    fn sync_copy_blocks_host_async_does_not() {
        let (mut gpu, mut host) = setup();
        let s0 = gpu.default_stream();
        let buf = gpu.alloc(1 << 20).unwrap();
        let data = vec![0.0f32; 1 << 20];
        let v = DevMat::whole(buf, 1 << 10);
        let before = host.now();
        gpu.h2d(s0, v, 1 << 10, 1 << 10, &data, 1 << 10, false, CopyMode::Sync, &mut host);
        let sync_cost = host.now() - before;
        assert!(sync_cost > 1e-3, "4 MB pageable ≈ 3 ms: {sync_cost}");

        let before = host.now();
        gpu.h2d(s0, v, 1 << 10, 1 << 10, &data, 1 << 10, true, CopyMode::Async, &mut host);
        let async_cost = host.now() - before;
        assert!(async_cost < 1e-4, "async issue must be cheap: {async_cost}");
    }

    #[test]
    fn pinned_copy_faster_than_pageable() {
        let (mut gpu, mut host) = setup();
        let s0 = gpu.default_stream();
        let buf = gpu.alloc(1 << 20).unwrap();
        let data = vec![0.0f32; 1 << 20];
        let v = DevMat::whole(buf, 1 << 10);
        gpu.set_recording(true);
        gpu.h2d(s0, v, 1 << 10, 1 << 10, &data, 1 << 10, false, CopyMode::Sync, &mut host);
        gpu.h2d(s0, v, 1 << 10, 1 << 10, &data, 1 << 10, true, CopyMode::Sync, &mut host);
        let recs = gpu.take_records();
        assert!(recs[1].duration() < recs[0].duration());
    }

    #[test]
    fn oom_propagates() {
        let mut cfg = tesla_t10();
        cfg.mem_bytes = 1000;
        let mut gpu = Gpu::new(cfg);
        assert!(gpu.alloc(10).is_ok());
        assert!(gpu.alloc(1000).is_err());
    }

    #[test]
    fn double_free_surfaces_as_error() {
        let (mut gpu, _host) = setup();
        let buf = gpu.alloc(16).unwrap();
        gpu.free(buf).unwrap();
        assert!(gpu.free(buf).is_err());
        assert!(gpu.buf_len(buf).is_err());
        assert!(gpu.peek(buf).is_err());
        // The device is still usable afterwards.
        assert!(gpu.alloc(16).is_ok());
    }

    #[test]
    fn panel_potrf_rejects_indefinite() {
        let (mut gpu, mut host) = setup();
        let buf = gpu.alloc(16).unwrap();
        let s0 = gpu.default_stream();
        let v = DevMat::whole(buf, 4);
        // Zero matrix is not PD.
        let err = gpu.panel_potrf(s0, v, 4, &mut host).unwrap_err();
        assert_eq!(err, 0);
    }

    #[test]
    fn event_query_is_non_blocking() {
        let (mut gpu, mut host) = setup();
        let buf = gpu.alloc(64 * 64).unwrap();
        let s0 = gpu.default_stream();
        let v = DevMat::whole(buf, 64);
        gpu.syrk(s0, v, v, 64, 32, &mut host);
        let ev = gpu.record_event(s0);
        let before = host.now();
        assert!(!gpu.event_query(ev, before), "kernel cannot have finished at issue time");
        assert!(gpu.event_query(ev, ev.0), "event completes exactly at its recorded time");
        assert_eq!(host.now(), before, "querying must not advance the host clock");
    }

    #[test]
    fn wait_event_host_blocks_to_event_not_device() {
        let (mut gpu, mut host) = setup();
        let buf = gpu.alloc(1 << 20).unwrap();
        let s0 = gpu.default_stream();
        let s1 = gpu.create_stream();
        let v = DevMat::whole(buf, 1 << 10);
        // Short kernel on s0, long kernel on s1.
        gpu.syrk(s0, v, v, 32, 16, &mut host);
        let ev = gpu.record_event(s0);
        gpu.syrk(s1, v, v, 1 << 10, 512, &mut host);
        gpu.wait_event_host(ev, &mut host);
        assert!((host.now() - ev.0).abs() < 1e-15, "host waits exactly to the event");
        assert!(host.now() < gpu.stream_tail(s1), "the long kernel is still in flight");
    }

    #[test]
    fn engine_busy_accounting_accumulates_and_resets() {
        let (mut gpu, mut host) = setup();
        let buf = gpu.alloc(1 << 18).unwrap();
        let s0 = gpu.default_stream();
        let v = DevMat::whole(buf, 1 << 9);
        let data = vec![0.0f32; 1 << 18];
        gpu.syrk(s0, v, v, 256, 128, &mut host);
        gpu.h2d(s0, v, 1 << 9, 256, &data, 1 << 9, true, CopyMode::Async, &mut host);
        let kb = gpu.compute_busy();
        let cb = gpu.copy_busy();
        assert!(kb > 0.0 && cb > 0.0);
        assert!((gpu.stream_busy(s0) - (kb + cb)).abs() < 1e-15);
        gpu.sync_all(&mut host);
        let u = gpu.utilization(host.now());
        assert!(u.compute_utilization() > 0.0 && u.compute_utilization() <= 1.0);
        assert!(u.busy_fraction() <= 1.0 + 1e-12);
        gpu.reset_clock();
        assert_eq!(gpu.compute_busy(), 0.0);
        assert_eq!(gpu.copy_busy(), 0.0);
        assert_eq!(gpu.stream_busy(s0), 0.0);
    }

    #[test]
    fn p2p_moves_bytes_and_chains_events() {
        let mut set = DeviceSet::uniform(tesla_t10(), 2);
        let mut host = HostClock::new(xeon_5160_core());
        let n = 64;
        let src_buf = set.device_mut(0).alloc(n * n).unwrap();
        let dst_buf = set.device_mut(1).alloc(n * n).unwrap();
        let data: Vec<f32> = (0..n * n).map(|i| i as f32 * 0.5).collect();
        let s0 = set.device(0).default_stream();
        let s1 = set.device(1).default_stream();
        set.device_mut(0).h2d(
            s0,
            DevMat::whole(src_buf, n),
            n,
            n,
            &data,
            n,
            true,
            CopyMode::Async,
            &mut host,
        );
        let ready = set.device_mut(0).record_event(s0);
        let ev = set.p2p(
            0,
            DevMat::whole(src_buf, n),
            1,
            s1,
            DevMat::whole(dst_buf, n),
            n,
            n,
            ready,
            &mut host,
        );
        assert!(ev.0 >= ready.0, "peer-copy events are forward-only");
        assert_eq!(set.device(1).peek(dst_buf).unwrap(), &data[..], "d2d moves exact bytes");
        assert_eq!(set.peer_bytes(), n * n * 4);
        assert!(set.device(0).peer_busy() > 0.0 && set.device(1).peer_busy() > 0.0);
        // The destination stream tail advanced to the copy's completion.
        assert!((set.device(1).stream_tail(s1) - ev.0).abs() < 1e-15);
    }

    #[test]
    fn p2p_overlaps_pcie_copy_engine() {
        // A peer copy runs on its own engine: issue a long h2d on the
        // destination's copy engine, then a p2p — the p2p must not queue
        // behind it.
        let mut set = DeviceSet::uniform(tesla_t10(), 2);
        let mut host = HostClock::new(xeon_5160_core());
        let n = 1 << 10;
        let a = set.device_mut(0).alloc(n * n).unwrap();
        let b = set.device_mut(1).alloc(n * n).unwrap();
        let big = vec![0.25f32; n * n];
        let s1 = set.device(1).default_stream();
        let s1b = set.device_mut(1).stream(1);
        set.device_mut(1).h2d(
            s1,
            DevMat::whole(b, n),
            n,
            n,
            &big,
            n,
            true,
            CopyMode::Async,
            &mut host,
        );
        let h2d_end = set.device(1).stream_tail(s1);
        set.device_mut(1).set_recording(true);
        set.p2p(0, DevMat::whole(a, n), 1, s1b, DevMat::whole(b, n), 64, 64, Event(0.0), &mut host);
        let recs = set.device_mut(1).take_records();
        assert_eq!(recs.len(), 1);
        assert!(matches!(recs[0].component, Component::CopyP2P));
        assert!(recs[0].start < h2d_end, "p2p must overlap the PCIe copy engine");
    }

    #[test]
    fn p2p_serializes_on_the_peer_engine() {
        let mut set = DeviceSet::uniform(tesla_t10(), 3);
        let mut host = HostClock::new(xeon_5160_core());
        let a = set.device_mut(0).alloc(4096).unwrap();
        let b = set.device_mut(1).alloc(4096).unwrap();
        let c = set.device_mut(2).alloc(4096).unwrap();
        let s1 = set.device(1).default_stream();
        let ev1 = set.p2p(
            0,
            DevMat::whole(a, 64),
            1,
            s1,
            DevMat::whole(b, 64),
            64,
            64,
            Event(0.0),
            &mut host,
        );
        // Device 1's peer engine is busy until ev1; a second copy into it
        // (from a third device) must start no earlier.
        let ev2 = set.p2p(
            2,
            DevMat::whole(c, 64),
            1,
            s1,
            DevMat::whole(b, 64),
            64,
            64,
            Event(0.0),
            &mut host,
        );
        assert!(ev2.0 >= ev1.0 * 2.0 - 1e-12, "peer copies serialise on the shared engine");
    }

    #[test]
    fn device_set_take_restore_and_reset() {
        let mut set = DeviceSet::uniform(tesla_t10(), 2);
        let mut host = HostClock::new(xeon_5160_core());
        let g = set.take(0);
        // Remaining device still works.
        let buf = set.device_mut(1).alloc(16).unwrap();
        let s = set.device(1).default_stream();
        set.device_mut(1).h2d(
            s,
            DevMat::whole(buf, 4),
            4,
            4,
            &[2.0; 16],
            4,
            false,
            CopyMode::Sync,
            &mut host,
        );
        set.restore(0, g);
        assert_eq!(set.len(), 2);
        set.sync_all(&mut host);
        let us = set.utilizations(host.now());
        assert_eq!(us.len(), 2);
        assert!(us[1].copy_busy > 0.0);
        set.reset_clocks();
        assert_eq!(set.device(1).copy_busy(), 0.0);
        assert_eq!(set.peer_bytes(), 0);
        assert_eq!(set.device(1).peek(buf).unwrap()[0], 2.0, "reset keeps memory");
        assert_eq!(set.into_gpus().len(), 2);
    }

    #[test]
    fn reset_clock_keeps_memory() {
        let (mut gpu, mut host) = setup();
        let buf = gpu.alloc(16).unwrap();
        let s0 = gpu.default_stream();
        let v = DevMat::whole(buf, 4);
        gpu.h2d(s0, v, 4, 4, &[1.0; 16], 4, false, CopyMode::Sync, &mut host);
        gpu.reset_clock();
        assert_eq!(gpu.stream_tail(s0), 0.0);
        assert_eq!(gpu.peek(buf).unwrap()[0], 1.0);
    }
}
