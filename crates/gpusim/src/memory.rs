//! Device memory management.
//!
//! A slab of `f32` buffers with byte accounting against the configured
//! device capacity. Allocation failure is a first-class outcome — the
//! paper notes that GPU memory limits are what force large problems into
//! hybrid CPU/GPU execution.

/// Handle to a device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DevBuf(pub(crate) usize);

/// Device out-of-memory error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceOom {
    /// Bytes requested by the failing allocation.
    pub requested: usize,
    /// Bytes free at the time of the request.
    pub available: usize,
}

impl std::fmt::Display for DeviceOom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device out of memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for DeviceOom {}

/// Error for an operation on a buffer handle that is out of range or
/// already freed (double-free / use-after-free). Reported as a value so a
/// solve-path error can degrade gracefully instead of aborting the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidBuffer {
    /// The offending handle's id.
    pub id: usize,
}

impl std::fmt::Display for InvalidBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid device buffer handle {} (freed or never allocated)", self.id)
    }
}

impl std::error::Error for InvalidBuffer {}

/// A view into a device buffer: column-major matrix at `off` with leading
/// dimension `ld`.
#[derive(Debug, Clone, Copy)]
pub struct DevMat {
    /// Buffer holding the data.
    pub buf: DevBuf,
    /// Element offset of the (0,0) entry.
    pub off: usize,
    /// Leading dimension in elements.
    pub ld: usize,
}

impl DevMat {
    /// View of the whole buffer as an `ld`-strided matrix starting at 0.
    pub fn whole(buf: DevBuf, ld: usize) -> Self {
        DevMat { buf, off: 0, ld }
    }

    /// Sub-view displaced by (`di`, `dj`) rows/columns.
    pub fn offset(self, di: usize, dj: usize) -> Self {
        DevMat { buf: self.buf, off: self.off + di + dj * self.ld, ld: self.ld }
    }
}

#[derive(Debug)]
pub(crate) struct DeviceMemory {
    slabs: Vec<Option<Vec<f32>>>,
    lens: Vec<usize>,
    free_ids: Vec<usize>,
    capacity: usize,
    used: usize,
    peak: usize,
    /// Virtual mode: track sizes and charge capacity without backing
    /// storage — used by timing-only estimation on huge fronts.
    pub virtual_mode: bool,
}

impl DeviceMemory {
    pub fn new(capacity: usize) -> Self {
        DeviceMemory {
            slabs: Vec::new(),
            lens: Vec::new(),
            free_ids: Vec::new(),
            capacity,
            used: 0,
            peak: 0,
            virtual_mode: false,
        }
    }

    pub fn alloc(&mut self, len: usize) -> Result<DevBuf, DeviceOom> {
        let bytes = len * 4;
        if self.used + bytes > self.capacity {
            return Err(DeviceOom { requested: bytes, available: self.capacity - self.used });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        let data = if self.virtual_mode { Vec::new() } else { vec![0.0f32; len] };
        let id = match self.free_ids.pop() {
            Some(id) => {
                self.slabs[id] = Some(data);
                self.lens[id] = len;
                id
            }
            None => {
                self.slabs.push(Some(data));
                self.lens.push(len);
                self.slabs.len() - 1
            }
        };
        Ok(DevBuf(id))
    }

    /// Check that `buf` names a live slab.
    fn check(&self, buf: DevBuf) -> Result<(), InvalidBuffer> {
        match self.slabs.get(buf.0) {
            Some(Some(_)) => Ok(()),
            _ => Err(InvalidBuffer { id: buf.0 }),
        }
    }

    /// Release a buffer. A double free or out-of-range handle is reported
    /// as [`InvalidBuffer`] with the accounting untouched.
    pub fn free(&mut self, buf: DevBuf) -> Result<(), InvalidBuffer> {
        self.check(buf)?;
        self.slabs[buf.0] = None;
        self.used -= self.lens[buf.0] * 4;
        self.free_ids.push(buf.0);
        Ok(())
    }

    pub fn len(&self, buf: DevBuf) -> Result<usize, InvalidBuffer> {
        self.check(buf)?;
        Ok(self.lens[buf.0])
    }

    pub fn get(&self, buf: DevBuf) -> Result<&[f32], InvalidBuffer> {
        self.check(buf)?;
        Ok(self.slabs[buf.0].as_ref().unwrap())
    }

    pub fn get_mut(&mut self, buf: DevBuf) -> Result<&mut [f32], InvalidBuffer> {
        self.check(buf)?;
        Ok(self.slabs[buf.0].as_mut().unwrap())
    }

    pub fn used(&self) -> usize {
        self.used
    }

    pub fn peak(&self) -> usize {
        self.peak
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_accounting() {
        let mut m = DeviceMemory::new(1000);
        let a = m.alloc(100).unwrap(); // 400 bytes
        assert_eq!(m.used(), 400);
        let b = m.alloc(100).unwrap();
        assert_eq!(m.used(), 800);
        m.free(a).unwrap();
        assert_eq!(m.used(), 400);
        assert_eq!(m.peak(), 800);
        m.free(b).unwrap();
        assert_eq!(m.used(), 0);
    }

    #[test]
    fn oom_reports_sizes() {
        let mut m = DeviceMemory::new(100);
        let err = m.alloc(1000).unwrap_err();
        assert_eq!(err.requested, 4000);
        assert_eq!(err.available, 100);
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn slot_reuse_after_free() {
        let mut m = DeviceMemory::new(10_000);
        let a = m.alloc(10).unwrap();
        m.free(a).unwrap();
        let b = m.alloc(20).unwrap();
        // Freed slot id is reused.
        assert_eq!(a.0, b.0);
        assert_eq!(m.len(b), Ok(20));
    }

    #[test]
    fn double_free_is_an_error_not_a_panic() {
        let mut m = DeviceMemory::new(10_000);
        let a = m.alloc(10).unwrap();
        m.free(a).unwrap();
        assert_eq!(m.free(a), Err(InvalidBuffer { id: a.0 }));
        // Accounting must be untouched by the failed free.
        assert_eq!(m.used(), 0);
        // The slab can still be allocated from afterwards.
        assert!(m.alloc(10).is_ok());
    }

    #[test]
    fn use_after_free_is_an_error_not_a_panic() {
        let mut m = DeviceMemory::new(10_000);
        let a = m.alloc(10).unwrap();
        m.free(a).unwrap();
        assert_eq!(m.len(a), Err(InvalidBuffer { id: a.0 }));
        assert_eq!(m.get(a).err(), Some(InvalidBuffer { id: a.0 }));
        assert_eq!(m.get_mut(a).err(), Some(InvalidBuffer { id: a.0 }));
    }

    #[test]
    fn out_of_range_handle_is_an_error() {
        let mut m = DeviceMemory::new(10_000);
        assert_eq!(m.free(DevBuf(42)), Err(InvalidBuffer { id: 42 }));
        assert_eq!(m.len(DevBuf(42)), Err(InvalidBuffer { id: 42 }));
    }

    #[test]
    fn devmat_offset_arithmetic() {
        let v = DevMat { buf: DevBuf(0), off: 5, ld: 10 };
        let w = v.offset(2, 3);
        assert_eq!(w.off, 5 + 2 + 30);
        assert_eq!(w.ld, 10);
    }

    #[test]
    fn buffers_zero_initialized() {
        let mut m = DeviceMemory::new(10_000);
        let a = m.alloc(16).unwrap();
        assert!(m.get(a).unwrap().iter().all(|&v| v == 0.0));
    }
}
