//! Residency tiers for out-of-core execution (DESIGN.md §4.14).
//!
//! The in-core drivers assume the factor slab and the front arena are
//! device-resident for the whole factorization. The out-of-core mode
//! (`mf-core::ooc`) caps that residency at a byte budget — the *device
//! tier* — and spills evicted blocks down a two-level hierarchy:
//!
//! * **pinned host** — capacity-bounded, PCIe-speed transfers (the same
//!   pinned-transfer regime the paper's §V-A2 staging uses);
//! * **simulated disk** — unbounded, at streaming-storage bandwidth.
//!
//! This module only models the tiers: capacities and bandwidths, the
//! spill-placement decision, and the per-transfer second charges. *What*
//! gets evicted and *when* is decided by the liveness-driven plan in
//! `mf-core::ooc`; charges land on the existing [`crate::HostClock`]
//! via `charge_memop`, so spill traffic shows up on the same virtual
//! timeline as every other simulated cost.
//!
//! Capacities follow the repository's ~25×-scaled-down stand-in regime
//! (see `mf-matgen::paper`): the defaults are sized so the five scaled
//! suite matrices fit in core while the `mf-matgen::huge` families do
//! not — mirroring how the real sgi_4M-class problems overflow a Tesla
//! T10's 4 GB and then host RAM.

/// Where an evicted block is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpillTier {
    /// Pinned host memory (capacity-bounded, PCIe bandwidth).
    Host,
    /// Simulated disk (unbounded, streaming bandwidth).
    Disk,
}

/// Default device-tier residency budget in bytes (what
/// `FactorOptions::memory_budget` caps when callers do not choose their
/// own figure), in the scaled stand-in regime.
pub const DEFAULT_DEVICE_BUDGET: usize = 8 << 20;

/// Capacities and bandwidths of the spill tiers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierParams {
    /// Pinned-host tier capacity in bytes; spills that do not fit go to
    /// disk.
    pub host_capacity: usize,
    /// Device → pinned-host eviction bandwidth (bytes/s); pinned PCIe
    /// write, per the paper's Table III transfer regime.
    pub host_write_bw: f64,
    /// Pinned-host → device reload bandwidth (bytes/s).
    pub host_read_bw: f64,
    /// Device → disk eviction bandwidth (bytes/s).
    pub disk_write_bw: f64,
    /// Disk → device reload bandwidth (bytes/s).
    pub disk_read_bw: f64,
}

impl Default for TierParams {
    fn default() -> Self {
        TierParams {
            host_capacity: 24 << 20,
            // Pinned PCIe-gen2-era transfer rates (asymmetric, as measured
            // for the paper's node: d2h slightly slower than h2d).
            host_write_bw: 5.2e9,
            host_read_bw: 5.7e9,
            // Streaming storage of the same era.
            disk_write_bw: 1.2e8,
            disk_read_bw: 1.5e8,
        }
    }
}

impl TierParams {
    /// Bandwidth of an eviction (device → tier) in bytes/s.
    pub fn write_bw(&self, tier: SpillTier) -> f64 {
        match tier {
            SpillTier::Host => self.host_write_bw,
            SpillTier::Disk => self.disk_write_bw,
        }
    }

    /// Bandwidth of a reload (tier → device) in bytes/s.
    pub fn read_bw(&self, tier: SpillTier) -> f64 {
        match tier {
            SpillTier::Host => self.host_read_bw,
            SpillTier::Disk => self.disk_read_bw,
        }
    }

    /// Seconds one transfer of `bytes` takes in `dir` to/from `tier`
    /// (`write = true` is an eviction).
    pub fn transfer_seconds(&self, tier: SpillTier, write: bool, bytes: usize) -> f64 {
        let bw = if write { self.write_bw(tier) } else { self.read_bw(tier) };
        bytes as f64 / bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered() {
        let t = TierParams::default();
        // The tier hierarchy only makes sense if host is faster than disk
        // and the device budget is below the host capacity.
        assert!(t.host_write_bw > t.disk_write_bw);
        assert!(t.host_read_bw > t.disk_read_bw);
        assert!(DEFAULT_DEVICE_BUDGET < t.host_capacity);
    }

    #[test]
    fn transfer_seconds_scale_linearly() {
        let t = TierParams::default();
        let one = t.transfer_seconds(SpillTier::Disk, true, 1 << 20);
        let two = t.transfer_seconds(SpillTier::Disk, true, 2 << 20);
        assert!((two - 2.0 * one).abs() < 1e-15);
        assert!(
            t.transfer_seconds(SpillTier::Host, false, 1 << 20)
                < t.transfer_seconds(SpillTier::Disk, false, 1 << 20)
        );
    }
}
