//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the real `rand` cannot be
//! fetched from crates.io. This crate re-implements exactly the surface the
//! workspace uses — `StdRng::seed_from_u64`, `Rng::gen_range` over integer
//! and float ranges, and `Rng::gen` for a handful of primitives — on top of
//! xoshiro256++ seeded through SplitMix64 (the same construction the real
//! `rand` uses for `SmallRng`). Streams are deterministic per seed, which is
//! all the workspace relies on; the exact values differ from upstream
//! `rand`, and nothing here is cryptographic.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::StdRng;
    /// Alias — the workspace treats Small/Std identically.
    pub type SmallRng = crate::StdRng;
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// Minimal core trait: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Build from OS entropy — here: from a fixed constant mixed with the
    /// address of a stack local, good enough for the non-test paths that
    /// want "some" seed. Deterministic builds should use `seed_from_u64`.
    fn from_entropy() -> Self {
        let marker = 0u8;
        Self::seed_from_u64(0x9E37_79B9_7F4A_7C15 ^ (&marker as *const u8 as u64))
    }
}

/// Sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range (see [`SampleRange`] impls).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Uniform sample of a primitive (see [`Standard`] impls).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types uniformly samplable over their full domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draw one uniform value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges a uniform value can be drawn from (`Rng::gen_range`).
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling on `[0, bound)` via Lemire-style rejection.
fn uniform_below(rng: &mut impl RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * bound as u128) >> 64) as u64;
        let lo = x.wrapping_mul(bound);
        if lo >= threshold {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64-sized range.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_below(rng, span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range!(i64, i32, i16, i8, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + u * (self.end - self.start)
    }
}

/// xoshiro256++ — the default generator. Deterministic per seed.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let xc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..300 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_float_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
