//! Offline stand-in for the `criterion` crate.
//!
//! Implements the measuring surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `iter` /
//! `iter_batched`, throughput annotation — with real wall-clock measurement
//! (calibrated warm-up, fixed sample count, median/mean reporting). Results
//! are additionally accumulated in a process-global registry so bench
//! binaries can post-process them (e.g. the dense-kernel bench writes
//! `BENCH_dense.json` with GF/s per kernel/shape).

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, like `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One finished measurement, kept in the global registry.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark group name (or "" for bare `bench_function`).
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: f64,
    /// Elements-per-iteration annotation, if the group set a throughput.
    pub throughput_elements: Option<u64>,
}

static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

/// Snapshot of every measurement taken so far in this process.
pub fn records() -> Vec<BenchRecord> {
    RECORDS.lock().unwrap().clone()
}

fn push_record(r: BenchRecord) {
    RECORDS.lock().unwrap().push(r);
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored: every batch
/// re-runs its setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Logical elements processed per iteration (flops, entries, …).
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target total measuring time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// No-op (kept for signature compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(self, "", id, None, |b| f(b));
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure receiving a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(self.criterion, &self.name, &id.id, self.throughput, |b| f(b, input));
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_benchmark(self.criterion, &self.name, id, self.throughput, |b| f(b));
        self
    }

    /// Close the group (printing is per-benchmark; nothing else to do).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iters_per_sample: u64,
    /// Accumulated per-sample durations of the *measured* code only.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        for _ in 0..self.iters_per_sample {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.samples.push(measured);
    }

    /// Like `iter_batched`, borrowing the setup value mutably.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut measured = Duration::ZERO;
        for _ in 0..self.iters_per_sample {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            measured += start.elapsed();
        }
        self.samples.push(measured);
    }
}

fn run_benchmark(
    cfg: &Criterion,
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibration: find an iteration count whose single invocation costs
    // roughly measurement_time / sample_size, warming caches on the way.
    let mut bencher = Bencher { iters_per_sample: 1, samples: Vec::new() };
    let warm_deadline = Instant::now() + cfg.warm_up_time;
    loop {
        bencher.samples.clear();
        let t0 = Instant::now();
        f(&mut bencher);
        let elapsed = bencher.samples.last().copied().unwrap_or_else(|| t0.elapsed());
        let per_iter = elapsed / bencher.iters_per_sample.max(1) as u32;
        let target = cfg.measurement_time / cfg.sample_size as u32;
        if elapsed >= target || Instant::now() >= warm_deadline {
            let per_iter_ns = per_iter.as_nanos().max(1) as u64;
            bencher.iters_per_sample =
                (target.as_nanos() as u64 / per_iter_ns).clamp(1, 1_000_000_000);
            break;
        }
        bencher.iters_per_sample = bencher.iters_per_sample.saturating_mul(2);
    }
    // Measurement.
    bencher.samples.clear();
    for _ in 0..cfg.sample_size {
        f(&mut bencher);
    }
    let per_iter_ns: Vec<f64> = bencher
        .samples
        .iter()
        .map(|d| d.as_secs_f64() * 1e9 / bencher.iters_per_sample as f64)
        .collect();
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len().max(1) as f64;
    let mut sorted = per_iter_ns.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted.get(sorted.len() / 2).copied().unwrap_or(mean);

    let full = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    let elements = match throughput {
        Some(Throughput::Elements(e)) => Some(e),
        _ => None,
    };
    match elements {
        Some(e) => {
            let rate = e as f64 / (median / 1e9);
            println!(
                "bench {full:<44} median {:>12}  mean {:>12}  thrpt {:>10.3} Melem/s",
                fmt_ns(median),
                fmt_ns(mean),
                rate / 1e6
            );
        }
        None => {
            println!("bench {full:<44} median {:>12}  mean {:>12}", fmt_ns(median), fmt_ns(mean));
        }
    }
    push_record(BenchRecord {
        group: group.to_string(),
        id: id.to_string(),
        mean_ns: mean,
        median_ns: median,
        throughput_elements: elements,
    });
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group: a function list plus optional config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes flags like `--bench`; a filter argument may
            // follow. Run everything when no filter is given.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1000));
        g.bench_with_input(BenchmarkId::new("f", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        g.finish();
        let recs = records();
        let r = recs.iter().find(|r| r.group == "g" && r.id == "f/8").expect("recorded");
        assert!(r.mean_ns > 0.0 && r.median_ns > 0.0);
        assert_eq!(r.throughput_elements, Some(1000));
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(2));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        assert!(records().iter().any(|r| r.id == "batched"));
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
