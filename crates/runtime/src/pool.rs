//! The worker pool: per-worker Chase–Lev deques, a sleep/wake parker, and
//! the run loop that drives a [`TaskGraph`] to completion.

use crate::deque::{Steal, TaskDeque};
use crate::graph::TaskGraph;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// How long an idle worker sleeps before re-scanning on its own. Wakeups
/// are delivered reliably (the SeqCst handshake in [`Parker`] closes the
/// historical store-load race), so the timeout is pure paranoia against
/// bugs elsewhere — it can afford to be long. The old 500 µs value papered
/// over missed wakes with busy re-scans, which burned a core per idle
/// worker on expansion-heavy graphs.
const PARK_TIMEOUT: Duration = Duration::from_millis(5);

/// Epoch-based sleep/wake coordination for idle workers.
///
/// A worker reads the epoch, scans every deque, and parks only if the epoch
/// is still unchanged — any wake-worthy event (task release or expansion,
/// abort, last completion) bumps the epoch first.
///
/// The wake path is a classic two-flag (Dekker-style) handshake: the parker
/// publishes `sleepers += 1` then reads `epoch`; the waker publishes
/// `epoch += 1` then reads `sleepers`. Both sides' operations are `SeqCst`,
/// so at least one of them observes the other — a missed wake would need
/// the parker to read the pre-bump epoch *and* the waker to read the
/// pre-increment sleeper count, which the total `SeqCst` order forbids.
/// Release/acquire alone is not enough: each thread's load could hoist
/// above its own store, and the wait would silently fall back to the
/// safety timeout.
#[derive(Debug, Default)]
struct Parker {
    epoch: AtomicU64,
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Parker {
    fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Bump the epoch and wake every parked worker.
    fn wake_all(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // Taking the lock orders the notify after any in-progress
            // check-then-wait transition.
            let _g = self.lock.lock().unwrap();
            self.cv.notify_all();
        }
    }

    /// Park until the epoch moves past `seen` (or the safety timeout).
    fn park(&self, seen: u64) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        {
            let g = self.lock.lock().unwrap();
            if self.epoch.load(Ordering::SeqCst) == seen {
                let _ = self.cv.wait_timeout(g, PARK_TIMEOUT).unwrap();
            }
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Sets the abort flag if the worker unwinds out of a task, so the other
/// workers stop instead of waiting forever for a completion count that will
/// never arrive.
struct AbortOnPanic<'a> {
    abort: &'a AtomicBool,
    parker: &'a Parker,
}

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.abort.store(true, Ordering::Release);
            self.parker.wake_all();
        }
    }
}

/// A work-stealing runtime with a fixed worker count.
#[derive(Debug, Clone, Copy)]
pub struct Runtime {
    workers: usize,
}

impl Runtime {
    /// A runtime with `workers` worker threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Runtime { workers: workers.max(1) }
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute every task of `graph` in dependency order.
    ///
    /// `states` supplies one mutable per-worker context (scratch arenas,
    /// clocks, record buffers, …) and must have exactly [`Self::workers`]
    /// entries; the vector is returned after the run for the caller to
    /// harvest. `task(state, id)` runs each task; the runtime guarantees a
    /// task starts only after all of its prerequisites returned `Ok`, with
    /// their writes visible (release/acquire on the dependency counters).
    ///
    /// Scheduling: the initial ready set (tasks with no prerequisites) is
    /// dealt round-robin across the worker deques in ascending id order;
    /// each completion pushes newly released tasks onto the completing
    /// worker's own deque (bottom, LIFO — depth-first into the tree, the
    /// cache-friendly order); idle workers steal from the top (FIFO —
    /// breadth-first, the load-balancing order).
    ///
    /// Errors abort the run: no new task starts after the first `Err`, and
    /// every `(task, error)` observed before the stop is returned (an empty
    /// vector means success). More than one error can be reported because
    /// in-flight tasks on other workers run to completion.
    ///
    /// The calling thread participates as worker 0 — only `workers - 1`
    /// threads are spawned, so a 1-worker runtime degenerates to a plain
    /// loop on the caller's thread (no spawn, warm allocator arenas).
    pub fn run<S, E, F>(
        &self,
        graph: &TaskGraph,
        states: Vec<S>,
        task: F,
    ) -> (Vec<S>, Vec<(usize, E)>)
    where
        S: Send,
        E: Send,
        F: Fn(&mut S, usize) -> Result<(), E> + Sync,
    {
        assert_eq!(states.len(), self.workers, "one state per worker required");
        let n = graph.len();
        if n == 0 {
            return (states, Vec::new());
        }
        let nw = self.workers;
        // Each deque is sized to the whole graph: a task is pushed at most
        // once overall, so no deque can ever see more than `n` pushes —
        // the no-wraparound precondition of `TaskDeque`. Callers that
        // expand coarse tasks into fine-grained child tasks (e.g. a front's
        // tile DAG) pre-declare them as graph nodes, so the bound covers
        // the maximum tile-task burst too — no deque ever grows or spills.
        let deques: Vec<TaskDeque> = (0..nw).map(|_| TaskDeque::new(n)).collect();
        for (i, t) in graph.initial_ready().into_iter().enumerate() {
            deques[i % nw].push(t);
        }

        let completed = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let parker = Parker::default();
        let errors: Mutex<Vec<(usize, E)>> = Mutex::new(Vec::new());

        let find_task = |w: usize| -> Option<usize> {
            if let Some(t) = deques[w].pop() {
                return Some(t);
            }
            for i in 1..nw {
                let d = &deques[(w + i) % nw];
                loop {
                    match d.steal() {
                        Steal::Task(t) => return Some(t),
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => break,
                    }
                }
            }
            None
        };

        let worker = |w: usize, state: &mut S| {
            let _guard = AbortOnPanic { abort: &abort, parker: &parker };
            loop {
                if abort.load(Ordering::Acquire) || completed.load(Ordering::Acquire) == n {
                    return;
                }
                // Read the epoch *before* the scan so a release that lands
                // mid-scan prevents the park below.
                let epoch = parker.epoch();
                let Some(t) = find_task(w) else {
                    if abort.load(Ordering::Acquire) || completed.load(Ordering::Acquire) == n {
                        return;
                    }
                    parker.park(epoch);
                    continue;
                };
                match task(state, t) {
                    Ok(()) => {
                        for &dep in graph.dependents(t) {
                            if graph.complete_one(dep) {
                                deques[w].push(dep);
                                parker.wake_all();
                            }
                        }
                        if completed.fetch_add(1, Ordering::AcqRel) + 1 == n {
                            parker.wake_all();
                        }
                    }
                    Err(e) => {
                        errors.lock().unwrap().push((t, e));
                        abort.store(true, Ordering::Release);
                        parker.wake_all();
                    }
                }
            }
        };

        let mut states = states;
        let mut state0 = states.remove(0);
        let states = std::thread::scope(|scope| {
            let handles: Vec<_> = states
                .into_iter()
                .enumerate()
                .map(|(i, st)| {
                    let worker = &worker;
                    scope.spawn(move || {
                        let mut st = st;
                        worker(i + 1, &mut st);
                        st
                    })
                })
                .collect();
            worker(0, &mut state0);
            let mut all = Vec::with_capacity(nw);
            all.push(state0);
            all.extend(handles.into_iter().map(|h| h.join().expect("worker thread panicked")));
            all
        });

        (states, errors.into_inner().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn chain(n: usize) -> TaskGraph {
        // 0 ← 1 ← 2 ← … (each task depends on the previous one).
        let mut g = TaskGraph::new(n);
        for t in 1..n {
            g.add_dependency(t, t - 1);
        }
        g
    }

    fn binary_tree(levels: u32) -> (TaskGraph, Vec<usize>) {
        // Heap-indexed complete binary tree: node 0 is the root, children of
        // i are 2i+1, 2i+2; parents[] in elimination-tree convention.
        let n = (1usize << levels) - 1;
        let parents: Vec<usize> =
            (0..n).map(|i| if i == 0 { usize::MAX } else { (i - 1) / 2 }).collect();
        (TaskGraph::from_parents(&parents), parents)
    }

    #[test]
    fn executes_every_task_once_respecting_dependencies() {
        for workers in [1, 2, 4, 8] {
            let (g, parents) = binary_tree(7); // 127 tasks
            let n = g.len();
            let done: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
            let rt = Runtime::new(workers);
            let states = vec![(); workers];
            let (_, errs) = rt.run(&g, states, |_, t| -> Result<(), ()> {
                // Children of t (if any) must already be done.
                for (c, &p) in parents.iter().enumerate() {
                    if p == t {
                        assert!(done[c].load(Ordering::Acquire), "child {c} of {t} not done");
                    }
                }
                assert!(!done[t].swap(true, Ordering::AcqRel), "task {t} ran twice");
                Ok(())
            });
            assert!(errs.is_empty());
            assert!(done.iter().all(|d| d.load(Ordering::Relaxed)), "{workers} workers");
        }
    }

    #[test]
    fn chain_serialises_on_any_worker_count() {
        let g = chain(200);
        let order: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let rt = Runtime::new(4);
        let (_, errs) = rt.run(&g, vec![(); 4], |_, t| -> Result<(), ()> {
            order.lock().unwrap().push(t);
            Ok(())
        });
        assert!(errs.is_empty());
        assert_eq!(*order.lock().unwrap(), (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn per_worker_state_is_private_and_returned() {
        let (g, _) = binary_tree(6);
        let rt = Runtime::new(3);
        let (states, errs) = rt.run(&g, vec![0usize; 3], |count, _| -> Result<(), ()> {
            *count += 1;
            Ok(())
        });
        assert!(errs.is_empty());
        assert_eq!(states.iter().sum::<usize>(), g.len(), "every task counted exactly once");
    }

    #[test]
    fn error_aborts_and_reports_the_task() {
        let (g, _) = binary_tree(8);
        let ran = AtomicUsize::new(0);
        let rt = Runtime::new(4);
        let (_, errs) = rt.run(&g, vec![(); 4], |_, t| {
            ran.fetch_add(1, Ordering::Relaxed);
            if t == 17 {
                Err("boom")
            } else {
                Ok(())
            }
        });
        assert!(errs.iter().any(|(t, e)| *t == 17 && *e == "boom"));
        // The root (task 0, which depends on everything) must never run.
        assert!(ran.load(Ordering::Relaxed) < g.len(), "abort must cut the run short");
    }

    #[test]
    fn park_wake_storm_stays_live() {
        // Alternating wide/narrow rounds: W parallel tasks funnel into a
        // single gate task that releases the next round, so most workers
        // park at every gate and must be woken by whichever worker runs it.
        // A lost wake costs a full PARK_TIMEOUT per occurrence; systematic
        // loss would stall this test into its harness timeout. Correctness
        // (every task exactly once, in round order) is asserted directly.
        let (rounds, width, workers) = (200usize, 4usize, 4usize);
        let n = rounds * (width + 1);
        let mut g = TaskGraph::new(n);
        let id = |r: usize, j: usize| r * (width + 1) + j; // j == width is the gate
        for r in 0..rounds {
            for j in 0..width {
                if r > 0 {
                    g.add_dependency(id(r, j), id(r - 1, width));
                }
                g.add_dependency(id(r, width), id(r, j));
            }
        }
        let done: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
        let rt = Runtime::new(workers);
        let (_, errs) = rt.run(&g, vec![(); workers], |_, t| -> Result<(), ()> {
            let (r, j) = (t / (width + 1), t % (width + 1));
            if j == width {
                for jj in 0..width {
                    assert!(done[id(r, jj)].load(Ordering::Acquire), "gate {r} ran early");
                }
            } else if r > 0 {
                assert!(done[id(r - 1, width)].load(Ordering::Acquire), "round {r} ran early");
            }
            assert!(!done[t].swap(true, Ordering::AcqRel), "task {t} ran twice");
            Ok(())
        });
        assert!(errs.is_empty());
        assert!(done.iter().all(|d| d.load(Ordering::Relaxed)));
    }

    #[test]
    fn empty_graph_is_a_no_op() {
        let g = TaskGraph::new(0);
        let rt = Runtime::new(2);
        let (states, errs) = rt.run(&g, vec![1u8, 2u8], |_, _| -> Result<(), ()> { Ok(()) });
        assert!(errs.is_empty());
        assert_eq!(states, vec![1, 2]);
    }
}
