//! # mf-runtime — a work-stealing elimination-tree task runtime
//!
//! The execution substrate that turns the *simulated* multi-worker results
//! of `mf-core::parallel` into *wall-clock* parallel numeric factorization:
//! a from-scratch, std-only (`std::thread`, `Mutex`/`Condvar`, atomics)
//! work-stealing scheduler in the style of the asynchronous task-DAG sparse
//! Cholesky solvers (Jacquelin et al.'s fan-both solver; PaStiX/qr_mumps
//! style runtimes).
//!
//! Three pieces:
//!
//! * [`TaskDeque`] — per-worker Chase–Lev-style deques: the owner pushes and
//!   pops at the bottom (LIFO, depth-first into the tree), thieves CAS the
//!   top (FIFO, breadth-first across it);
//! * [`TaskGraph`] — a dependency-counted DAG; for the factorization it is
//!   built straight from the postordered supernodal elimination tree
//!   ([`TaskGraph::from_parents`]), with the leaves seeding the ready
//!   queues;
//! * [`Runtime`] — the worker pool: spawn, schedule, steal, park idle
//!   workers, propagate errors, return per-worker state.
//!
//! Plus [`ThreadBudget`], the nested-parallelism arbiter that shares one
//! hardware-thread budget between tree-level workers and the dense engine's
//! column-slab threading (leaf fronts go wide *across* the tree, root
//! fronts go wide *inside* the kernel).
//!
//! The runtime itself imposes no ordering beyond the dependency edges —
//! determinism of the factorization's *numbers* is the caller's business
//! (`mf-core` buffers child update matrices and extend-adds them in
//! postorder child rank, making the parallel factor bitwise identical to
//! the serial one; see `factor_permuted_parallel`).

pub mod budget;
pub mod deque;
pub mod graph;
pub mod pool;

pub use budget::{BudgetLease, ThreadBudget};
pub use deque::{Steal, TaskDeque};
pub use graph::TaskGraph;
pub use pool::Runtime;
