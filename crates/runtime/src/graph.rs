//! A dependency-counted task graph.
//!
//! Tasks are dense ids `0..n`. Each task carries an atomic
//! remaining-prerequisite counter; completing a prerequisite decrements the
//! counter of every dependent, and the decrement that reaches zero *releases*
//! the dependent (the caller then schedules it). For the multifrontal
//! factorization the graph is the postordered supernodal elimination tree —
//! [`TaskGraph::from_parents`] builds exactly that shape — but arbitrary
//! DAGs are supported through [`TaskGraph::add_dependency`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// A DAG of `usize` tasks with atomic remaining-dependency counters.
#[derive(Debug)]
pub struct TaskGraph {
    /// `dependents[t]` = tasks that need `t` finished first.
    dependents: Vec<Vec<usize>>,
    /// Static prerequisite counts (for [`Self::reset`]).
    ndeps: Vec<usize>,
    /// Live remaining-prerequisite counters.
    remaining: Vec<AtomicUsize>,
}

impl TaskGraph {
    /// An edgeless graph of `n` tasks (every task initially ready).
    pub fn new(n: usize) -> Self {
        TaskGraph {
            dependents: vec![Vec::new(); n],
            ndeps: vec![0; n],
            remaining: (0..n).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Declare that `task` cannot start until `prereq` has completed.
    pub fn add_dependency(&mut self, task: usize, prereq: usize) {
        assert!(task != prereq, "task cannot depend on itself");
        self.dependents[prereq].push(task);
        self.ndeps[task] += 1;
        *self.remaining[task].get_mut() += 1;
    }

    /// Build the graph of a forest given by a parent array (`usize::MAX`
    /// marks a root): each parent depends on all of its children. This is
    /// the elimination-tree shape — leaves form the initial ready set.
    pub fn from_parents(parents: &[usize]) -> Self {
        let mut g = TaskGraph::new(parents.len());
        for (child, &p) in parents.iter().enumerate() {
            if p != usize::MAX {
                g.add_dependency(p, child);
            }
        }
        g
    }

    /// Build the *reversed* forest of a parent array (`usize::MAX` marks a
    /// root): each child depends on its parent, so execution sweeps
    /// root→leaves. This is the shape of the backward-substitution pass of
    /// the supernodal triangular solve — a supernode's update rows all lie
    /// in ancestor columns, so running every ancestor first is exactly the
    /// data dependence — and the roots form the initial ready set.
    pub fn from_parents_reversed(parents: &[usize]) -> Self {
        let mut g = TaskGraph::new(parents.len());
        for (child, &p) in parents.iter().enumerate() {
            if p != usize::MAX {
                g.add_dependency(child, p);
            }
        }
        g
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.ndeps.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.ndeps.is_empty()
    }

    /// Tasks with no prerequisites, in ascending id order (the leaf seed of
    /// the ready queue).
    pub fn initial_ready(&self) -> Vec<usize> {
        (0..self.len()).filter(|&t| self.ndeps[t] == 0).collect()
    }

    /// Tasks that are waiting on `task`.
    pub fn dependents(&self, task: usize) -> &[usize] {
        &self.dependents[task]
    }

    /// Record that one prerequisite of `task` finished; returns `true` when
    /// this was the last one, i.e. `task` is now ready to run. The
    /// release/acquire pairing on the counter makes every write of the
    /// prerequisite's outputs visible to the task that observes readiness.
    pub fn complete_one(&self, task: usize) -> bool {
        let prev = self.remaining[task].fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "dependency counter underflow on task {task}");
        prev == 1
    }

    /// Restore every counter to its static value so the graph can drive
    /// another run.
    pub fn reset(&mut self) {
        for (r, &d) in self.remaining.iter_mut().zip(&self.ndeps) {
            *r.get_mut() = d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_parents_builds_tree_counts() {
        // 0 and 1 are children of 2; 2 and 3 are children of 4 (root).
        let parents = [2, 2, 4, 4, usize::MAX];
        let g = TaskGraph::from_parents(&parents);
        assert_eq!(g.len(), 5);
        assert_eq!(g.initial_ready(), vec![0, 1, 3]);
        assert_eq!(g.dependents(0), &[2]);
        assert_eq!(g.dependents(2), &[4]);
        assert!(g.dependents(4).is_empty());
    }

    #[test]
    fn from_parents_reversed_flips_edges() {
        // Same forest as above; reversed, the root seeds the ready set and
        // dependents point parent → children.
        let parents = [2, 2, 4, 4, usize::MAX];
        let g = TaskGraph::from_parents_reversed(&parents);
        assert_eq!(g.initial_ready(), vec![4]);
        let mut d2 = g.dependents(2).to_vec();
        d2.sort_unstable();
        assert_eq!(d2, vec![0, 1]);
        let mut d4 = g.dependents(4).to_vec();
        d4.sort_unstable();
        assert_eq!(d4, vec![2, 3]);
        assert!(g.dependents(0).is_empty());
        assert!(g.complete_one(2), "a child has exactly one prerequisite");
    }

    #[test]
    fn counters_release_on_last_child() {
        let parents = [2, 2, usize::MAX];
        let g = TaskGraph::from_parents(&parents);
        assert!(!g.complete_one(2), "first child must not release the parent");
        assert!(g.complete_one(2), "second child must release the parent");
    }

    #[test]
    fn reset_restores_counts() {
        let parents = [1, usize::MAX];
        let mut g = TaskGraph::from_parents(&parents);
        assert!(g.complete_one(1));
        g.reset();
        assert!(g.complete_one(1), "after reset the counter must be restored");
    }

    #[test]
    fn general_dag_dependencies() {
        // Diamond: 3 depends on 1 and 2, both depend on 0.
        let mut g = TaskGraph::new(4);
        g.add_dependency(1, 0);
        g.add_dependency(2, 0);
        g.add_dependency(3, 1);
        g.add_dependency(3, 2);
        assert_eq!(g.initial_ready(), vec![0]);
        assert!(g.complete_one(1));
        assert!(g.complete_one(2));
        assert!(!g.complete_one(3));
        assert!(g.complete_one(3));
    }
}
