//! A Chase–Lev-style work-stealing deque of task ids.
//!
//! The classic single-owner / multi-thief deque (Chase & Lev, SPAA'05, with
//! the memory orderings of Lê et al., PPoPP'13 §3): the owning worker pushes
//! and pops at the *bottom*, thieves race a CAS on the *top*. Two properties
//! of our workload let the whole structure stay in safe Rust:
//!
//! * elements are plain `usize` task ids stored in `AtomicUsize` slots, so a
//!   racy read of a slot that loses its CAS returns a stale integer, never a
//!   torn or dangling value;
//! * every task is pushed at most once over the lifetime of a run, so a
//!   deque sized to the task count never wraps — no slot is ever
//!   overwritten while a thief may still read it, which removes the ABA /
//!   buffer-growth machinery of the general algorithm.
//!
//! `push` may therefore assume free capacity (checked with a `debug_assert`
//! and guaranteed by the runtime, which sizes each deque to the graph).

use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; worth retrying.
    Retry,
    /// A task was stolen.
    Task(usize),
}

/// A fixed-capacity Chase–Lev deque of `usize` task ids.
#[derive(Debug)]
pub struct TaskDeque {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buf: Box<[AtomicUsize]>,
    mask: usize,
}

impl TaskDeque {
    /// A deque able to hold `capacity` concurrently-pending tasks (rounded
    /// up to a power of two).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1).next_power_of_two();
        TaskDeque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buf: (0..cap).map(|_| AtomicUsize::new(0)).collect(),
            mask: cap - 1,
        }
    }

    #[inline]
    fn slot(&self, i: isize) -> &AtomicUsize {
        &self.buf[i as usize & self.mask]
    }

    /// Number of tasks currently in the deque (racy snapshot).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Whether the deque is observed empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-side push at the bottom. Only the owning worker may call this.
    pub fn push(&self, task: usize) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        debug_assert!(
            (b - t) < self.buf.len() as isize,
            "TaskDeque overflow: runtime must size deques to the task count"
        );
        self.slot(b).store(task, Ordering::Relaxed);
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-side pop at the bottom (LIFO). Only the owning worker may call
    /// this.
    pub fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let task = self.slot(b).load(Ordering::Relaxed);
            if t == b {
                // Last element: race thieves for it.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if won {
                    Some(task)
                } else {
                    None
                }
            } else {
                Some(task)
            }
        } else {
            // Deque was empty; restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief-side steal at the top (FIFO). Any thread may call this.
    pub fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        std::sync::atomic::fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let task = self.slot(t).load(Ordering::Relaxed);
            if self.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).is_ok() {
                Steal::Task(task)
            } else {
                Steal::Retry
            }
        } else {
            Steal::Empty
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn lifo_for_owner() {
        let d = TaskDeque::new(8);
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn fifo_for_thieves() {
        let d = TaskDeque::new(8);
        d.push(10);
        d.push(11);
        assert_eq!(d.steal(), Steal::Task(10));
        assert_eq!(d.steal(), Steal::Task(11));
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn owner_and_thieves_partition_the_work() {
        // Every pushed id is consumed exactly once across the owner and a
        // gang of thieves, whatever the interleaving.
        const N: usize = 20_000;
        const THIEVES: usize = 4;
        let d = TaskDeque::new(N);
        let seen = (0..N).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..THIEVES {
                s.spawn(|| loop {
                    match d.steal() {
                        Steal::Task(t) => {
                            seen[t].fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for i in 0..N {
                d.push(i);
                if i % 3 == 0 {
                    if let Some(t) = d.pop() {
                        seen[t].fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            while let Some(t) = d.pop() {
                seen[t].fetch_add(1, Ordering::Relaxed);
            }
            done.store(true, Ordering::Release);
        });
        for (i, c) in seen.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i} consumed wrong number of times");
        }
    }
}
