//! Nested-parallelism arbitration between the tree runtime and the dense
//! engine's column-slab threading.
//!
//! Near the leaves of the elimination tree many small fronts run
//! concurrently and each should keep its dense kernels single-threaded;
//! near the root one huge front runs alone and should take every hardware
//! thread inside the kernel. [`ThreadBudget`] implements that hand-off with
//! one shared counter: a task entering execution claims a slot and receives
//! `max(1, total / active)` kernel threads, so the *sum* of kernel widths
//! never exceeds the budget by more than the rounding slack — no
//! oversubscription when a root front runs under a busy pool.
//!
//! Widths may vary run to run (they depend on how many tasks happen to be
//! in flight), which is safe because the dense engine is bitwise
//! deterministic at every thread count.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A shared hardware-thread budget split between concurrently running tasks.
#[derive(Debug)]
pub struct ThreadBudget {
    total: usize,
    active: AtomicUsize,
}

impl ThreadBudget {
    /// A budget of `total` hardware threads (clamped to at least 1).
    pub fn new(total: usize) -> Self {
        ThreadBudget { total: total.max(1), active: AtomicUsize::new(0) }
    }

    /// The total budget.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Currently running tasks.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Enter a task: claims a slot and returns the kernel-thread width this
    /// task may use. Pair with [`Self::end`].
    pub fn begin(&self) -> usize {
        let running = self.active.fetch_add(1, Ordering::AcqRel) + 1;
        (self.total / running).max(1)
    }

    /// Leave a task entered with [`Self::begin`].
    pub fn end(&self) {
        let prev = self.active.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "ThreadBudget::end without begin");
    }

    /// RAII form of [`Self::begin`]/[`Self::end`]: the slot is released when
    /// the returned lease drops, including on unwind — the form long-lived
    /// services should use, where a leaked slot would permanently shrink
    /// every later task's kernel width.
    pub fn lease(&self) -> BudgetLease<'_> {
        let width = self.begin();
        BudgetLease { budget: self, width }
    }
}

/// A held slot of a [`ThreadBudget`]; see [`ThreadBudget::lease`].
#[derive(Debug)]
pub struct BudgetLease<'a> {
    budget: &'a ThreadBudget,
    width: usize,
}

impl BudgetLease<'_> {
    /// The kernel-thread width granted to this task.
    pub fn width(&self) -> usize {
        self.width
    }
}

impl Drop for BudgetLease<'_> {
    fn drop(&mut self) {
        self.budget.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lone_task_gets_the_whole_budget() {
        let b = ThreadBudget::new(8);
        assert_eq!(b.begin(), 8);
        b.end();
        assert_eq!(b.active(), 0);
    }

    #[test]
    fn concurrent_tasks_split_the_budget() {
        let b = ThreadBudget::new(8);
        assert_eq!(b.begin(), 8); // 1 active
        assert_eq!(b.begin(), 4); // 2 active
        assert_eq!(b.begin(), 2); // 3 active → 8/3 = 2
        assert_eq!(b.begin(), 2); // 4 active
        for _ in 0..4 {
            b.end();
        }
    }

    #[test]
    fn width_never_drops_below_one() {
        let b = ThreadBudget::new(2);
        for _ in 0..5 {
            assert!(b.begin() >= 1);
        }
        assert_eq!(b.active(), 5);
        for _ in 0..5 {
            b.end();
        }
    }

    #[test]
    fn lease_releases_on_drop_and_on_unwind() {
        let b = ThreadBudget::new(8);
        {
            let l1 = b.lease();
            assert_eq!(l1.width(), 8);
            let l2 = b.lease();
            assert_eq!(l2.width(), 4);
            assert_eq!(b.active(), 2);
        }
        assert_eq!(b.active(), 0, "both leases must release on scope exit");
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _l = b.lease();
            panic!("worker died mid-task");
        }));
        assert!(caught.is_err());
        assert_eq!(b.active(), 0, "a panicking holder must still release its slot");
    }

    #[test]
    fn zero_budget_clamps_to_one() {
        let b = ThreadBudget::new(0);
        assert_eq!(b.total(), 1);
        assert_eq!(b.begin(), 1);
        b.end();
    }
}
