//! Property tests for the packed kernel engine: every public kernel must
//! match its `reference.rs` counterpart for arbitrary shapes (odd sizes,
//! partial tiles), both transpose settings, padded leading dimensions
//! (`lda > m`), the degenerate `alpha`/`beta` values the dispatch layer
//! special-cases, and both scalar types. Padding bytes are filled with NaN
//! so that any out-of-bounds read poisons the result and fails the test.
//!
//! A separate deterministic test pins down the multithreading contract:
//! results are bitwise identical for every thread count.

use mf_dense::matrix::{random_spd, DenseMat};
use mf_dense::{
    gemm, gemm_ref, potrf, potrf_ref, set_num_threads, syrk_lower, syrk_ref, trsm_ref,
    trsm_right_lower_trans, Scalar, Transpose,
};
use proptest::prelude::*;

fn xorshift(seed: u64) -> impl FnMut() -> f64 {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }
}

/// Copy a dense matrix into a column-major buffer with `ld = rows + pad`,
/// filling the padding rows with NaN.
fn embed<T: Scalar>(m: &DenseMat<T>, pad: usize) -> (Vec<T>, usize) {
    let ld = m.rows().max(1) + pad;
    let mut buf = vec![T::from_f64(f64::NAN); ld * m.cols().max(1)];
    for j in 0..m.cols() {
        for i in 0..m.rows() {
            buf[i + j * ld] = m[(i, j)];
        }
    }
    (buf, ld)
}

fn coeff() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(1.0), Just(-1.0), Just(0.75)]
}

#[allow(clippy::too_many_arguments)]
fn gemm_case<T: Scalar>(
    m: usize,
    n: usize,
    kk: usize,
    ta: Transpose,
    tb: Transpose,
    pads: (usize, usize, usize),
    alpha: f64,
    beta: f64,
    seed: u64,
    tol: f64,
) -> Result<(), proptest::TestCaseError> {
    let mut rnd = xorshift(seed);
    let (ar, ac) = if ta == Transpose::No { (m, kk) } else { (kk, m) };
    let (br, bc) = if tb == Transpose::No { (kk, n) } else { (n, kk) };
    let a = DenseMat::<T>::from_fn(ar.max(1), ac.max(1), |_, _| T::from_f64(rnd()));
    let b = DenseMat::<T>::from_fn(br.max(1), bc.max(1), |_, _| T::from_f64(rnd()));
    let c0 = DenseMat::<T>::from_fn(m, n, |_, _| T::from_f64(rnd()));
    let (abuf, lda) = embed(&a, pads.0);
    let (bbuf, ldb) = embed(&b, pads.1);
    let (mut cbuf, ldc) = embed(&c0, pads.2);
    gemm(
        ta,
        tb,
        m,
        n,
        kk,
        T::from_f64(alpha),
        &abuf,
        lda,
        &bbuf,
        ldb,
        T::from_f64(beta),
        &mut cbuf,
        ldc,
    );
    let mut cref = c0.clone();
    gemm_ref(ta, tb, m, n, kk, T::from_f64(alpha), &a, &b, T::from_f64(beta), &mut cref);
    for j in 0..n {
        for i in 0..m {
            let got = cbuf[i + j * ldc].to_f64();
            let want = cref[(i, j)].to_f64();
            prop_assert!(
                (got - want).abs() < tol,
                "({i},{j}) m={m} n={n} k={kk} ta={ta:?} tb={tb:?} a={alpha} b={beta}: {got} vs {want}"
            );
        }
    }
    Ok(())
}

fn syrk_case<T: Scalar>(
    n: usize,
    k: usize,
    pad: usize,
    alpha: f64,
    beta: f64,
    seed: u64,
    tol: f64,
) -> Result<(), proptest::TestCaseError> {
    let mut rnd = xorshift(seed ^ 0xABCD);
    let a = DenseMat::<T>::from_fn(n, k.max(1), |_, _| T::from_f64(rnd()));
    let c0 = DenseMat::<T>::from_fn(n, n, |_, _| T::from_f64(rnd()));
    let (abuf, lda) = embed(&a, pad);
    let (mut cbuf, ldc) = embed(&c0, pad);
    syrk_lower(n, k, T::from_f64(alpha), &abuf, lda, T::from_f64(beta), &mut cbuf, ldc);
    let mut cref = c0.clone();
    syrk_ref(n, k, T::from_f64(alpha), &a, T::from_f64(beta), &mut cref);
    for j in 0..n {
        for i in 0..n {
            let got = cbuf[i + j * ldc].to_f64();
            if i >= j {
                let want = cref[(i, j)].to_f64();
                prop_assert!(
                    (got - want).abs() < tol,
                    "({i},{j}) n={n} k={k} a={alpha} b={beta}: {got} vs {want}"
                );
            } else {
                // Strict upper triangle must be untouched, bit for bit.
                prop_assert!(
                    got.to_bits() == c0[(i, j)].to_f64().to_bits(),
                    "upper ({i},{j}) modified"
                );
            }
        }
    }
    Ok(())
}

fn trsm_case<T: Scalar>(
    m: usize,
    n: usize,
    pad: usize,
    seed: u64,
    tol: f64,
) -> Result<(), proptest::TestCaseError> {
    let mut rnd = xorshift(seed ^ 0x5A5A);
    // Well-conditioned lower-triangular factor: dominant diagonal, small
    // off-diagonal entries.
    let l = DenseMat::<T>::from_fn(n, n, |i, j| {
        if i == j {
            T::from_f64(2.0 + rnd().abs())
        } else if i > j {
            T::from_f64(0.3 * rnd())
        } else {
            T::ZERO
        }
    });
    let b0 = DenseMat::<T>::from_fn(m, n, |_, _| T::from_f64(rnd()));
    let (lbuf, ldl) = embed(&l, pad);
    let (mut bbuf, ldb) = embed(&b0, pad);
    trsm_right_lower_trans(m, n, &lbuf, ldl, &mut bbuf, ldb);
    let mut bref = b0.clone();
    trsm_ref(&l, &mut bref);
    for j in 0..n {
        for i in 0..m {
            let got = bbuf[i + j * ldb].to_f64();
            let want = bref[(i, j)].to_f64();
            prop_assert!((got - want).abs() < tol, "({i},{j}) m={m} n={n}: {got} vs {want}");
        }
    }
    Ok(())
}

fn potrf_case<T: Scalar>(
    n: usize,
    pad: usize,
    seed: u64,
    tol: f64,
) -> Result<(), proptest::TestCaseError> {
    let a0 = random_spd::<T>(n, seed);
    let (mut abuf, lda) = embed(&a0, pad);
    potrf(n, &mut abuf, lda).expect("random_spd must factor");
    let mut aref = a0.clone();
    potrf_ref(&mut aref).expect("random_spd must factor (reference)");
    for j in 0..n {
        for i in j..n {
            let got = abuf[i + j * lda].to_f64();
            let want = aref[(i, j)].to_f64();
            prop_assert!((got - want).abs() < tol * n as f64, "({i},{j}) n={n}: {got} vs {want}");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Packed gemm matches the reference for every transpose combination,
    /// padded strides and special-cased coefficients, in both precisions.
    #[test]
    fn packed_gemm_matches_reference(
        m in 1usize..96,
        n in 1usize..96,
        kk in 0usize..96,
        ta in any::<bool>(),
        tb in any::<bool>(),
        pa in 0usize..4,
        pb in 0usize..4,
        pc in 0usize..4,
        alpha in coeff(),
        beta in coeff(),
        seed in 0u64..1_000_000,
    ) {
        let (ta, tb) = (
            if ta { Transpose::Yes } else { Transpose::No },
            if tb { Transpose::Yes } else { Transpose::No },
        );
        gemm_case::<f64>(m, n, kk, ta, tb, (pa, pb, pc), alpha, beta, seed, 1e-10)?;
        gemm_case::<f32>(m, n, kk, ta, tb, (pa, pb, pc), alpha, beta, seed, 1e-3)?;
    }

    /// Packed syrk matches the reference on the lower triangle and leaves
    /// the strict upper triangle bitwise untouched.
    #[test]
    fn packed_syrk_matches_reference(
        n in 1usize..96,
        k in 0usize..96,
        pad in 0usize..4,
        alpha in coeff(),
        beta in coeff(),
        seed in 0u64..1_000_000,
    ) {
        syrk_case::<f64>(n, k, pad, alpha, beta, seed, 1e-10)?;
        syrk_case::<f32>(n, k, pad, alpha, beta, seed, 1e-3)?;
    }

    /// Blocked trsm matches the reference solve across the naive/blocked
    /// size boundary.
    #[test]
    fn packed_trsm_matches_reference(
        m in 1usize..80,
        n in 1usize..80,
        pad in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        trsm_case::<f64>(m, n, pad, seed, 1e-8)?;
        trsm_case::<f32>(m, n, pad, seed, 1e-2)?;
    }

    /// Blocked potrf (with its recursive diagonal step) matches the
    /// reference factorization.
    #[test]
    fn packed_potrf_matches_reference(
        n in 1usize..150,
        pad in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        potrf_case::<f64>(n, pad, seed, 1e-9)?;
        potrf_case::<f32>(n, pad, seed, 1e-3)?;
    }
}

/// The threading contract: a fixed build produces bitwise-identical results
/// for every thread count (workers own disjoint column slabs; per-element
/// summation order never depends on the partition).
#[test]
fn thread_count_bitwise_determinism() {
    // Large enough to clear the engine's parallel threshold.
    let (m, n, kk) = (192usize, 320usize, 96usize);
    let mut rnd = xorshift(99);
    let a: Vec<f64> = (0..m * kk).map(|_| rnd()).collect();
    let b: Vec<f64> = (0..kk * n).map(|_| rnd()).collect();
    let c0: Vec<f64> = (0..m * n).map(|_| rnd()).collect();
    let sy: Vec<f64> = (0..n * n).map(|_| rnd()).collect();

    let run = |threads: usize| {
        set_num_threads(threads);
        let mut c = c0.clone();
        gemm(Transpose::No, Transpose::No, m, n, kk, 1.0, &a, m, &b, kk, 0.25, &mut c, m);
        let mut s = sy.clone();
        // Reinterpret `b`'s storage as an n × kk operand (lda = n).
        syrk_lower(n, kk, -1.0, &b, n, 1.0, &mut s, n);
        set_num_threads(0);
        (c, s)
    };
    let (c1, s1) = run(1);
    for t in [2, 3, 5, 8] {
        let (ct, st) = run(t);
        assert!(c1.iter().zip(&ct).all(|(x, y)| x.to_bits() == y.to_bits()), "gemm t={t}");
        assert!(s1.iter().zip(&st).all(|(x, y)| x.to_bits() == y.to_bits()), "syrk t={t}");
    }
}
