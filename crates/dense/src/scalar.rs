//! Scalar abstraction over `f32` / `f64`.
//!
//! The paper factors in single precision on the GPU (the Tesla T10's double
//! throughput is 8× lower) and recovers double accuracy with iterative
//! refinement. Everything downstream is therefore generic over this trait.

use crate::kernel::{micro_tile_generic, MR, NR};
use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar type usable in the dense and sparse kernels.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Display
    + PartialOrd
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of the representation.
    const EPSILON: Self;
    /// Number of bytes per element (4 for `f32`, 8 for `f64`).
    const BYTES: usize;
    /// Short name used in reports ("f32" / "f64").
    const NAME: &'static str;

    /// Lossy conversion from `f64`.
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// `true` if the value is finite (not NaN/inf).
    fn is_finite(self) -> bool;
    /// Fused multiply-add `self·b + c` with a single rounding. Maps to the
    /// hardware FMA instruction; the packed micro-kernels are written around
    /// it so their inner loops vectorize to FMA chains.
    fn mul_add(self, b: Self, c: Self) -> Self;

    /// One `MR × NR` register micro-tile over packed slivers (engine
    /// internals; see `kernel.rs`). Implementations may override this with
    /// explicitly vectorized code, but every path must accumulate each
    /// element's products in ascending depth order with one fused
    /// multiply-add per product so that all paths agree bitwise.
    #[doc(hidden)]
    #[inline]
    fn micro_tile(asl: &[Self], bsl: &[Self]) -> [[Self; MR]; NR] {
        micro_tile_generic(asl, bsl)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f32::EPSILON;
    const BYTES: usize = 4;
    const NAME: &'static str = "f32";

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline(always)]
    fn mul_add(self, b: Self, c: Self) -> Self {
        f32::mul_add(self, b, c)
    }

    #[inline]
    fn micro_tile(asl: &[Self], bsl: &[Self]) -> [[Self; MR]; NR] {
        #[cfg(target_arch = "x86_64")]
        if crate::simd::avx512_available() {
            // SAFETY: feature presence just checked; slivers come packed
            // from the engine with matching depth.
            return unsafe { crate::simd::micro_f32(asl, bsl) };
        }
        micro_tile_generic(asl, bsl)
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const EPSILON: Self = f64::EPSILON;
    const BYTES: usize = 8;
    const NAME: &'static str = "f64";

    #[inline(always)]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline(always)]
    fn mul_add(self, b: Self, c: Self) -> Self {
        f64::mul_add(self, b, c)
    }

    #[inline]
    fn micro_tile(asl: &[Self], bsl: &[Self]) -> [[Self; MR]; NR] {
        #[cfg(target_arch = "x86_64")]
        if crate::simd::avx512_available() {
            // SAFETY: feature presence just checked; slivers come packed
            // from the engine with matching depth.
            return unsafe { crate::simd::micro_f64(asl, bsl) };
        }
        micro_tile_generic(asl, bsl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(f32::BYTES, 4);
        assert_eq!(f64::BYTES, 8);
        assert_eq!(<f32 as Scalar>::ZERO, 0.0f32);
        assert_eq!(<f64 as Scalar>::ONE, 1.0f64);
        assert_eq!(f32::NAME, "f32");
        assert_eq!(f64::NAME, "f64");
    }

    #[test]
    fn conversions_roundtrip() {
        let x = 1.5f64;
        assert_eq!(<f32 as Scalar>::from_f64(x).to_f64(), 1.5);
        assert_eq!(<f64 as Scalar>::from_f64(x), 1.5);
    }

    #[test]
    fn sqrt_abs_finite() {
        assert_eq!(Scalar::sqrt(4.0f32), 2.0);
        assert_eq!(Scalar::abs(-3.0f64), 3.0);
        assert!(!Scalar::is_finite(f32::NAN));
        assert!(Scalar::is_finite(1.0f64));
    }
}
