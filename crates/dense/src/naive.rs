//! The pre-engine kernels: straightforward axpy/dot loop nests.
//!
//! These are kept for two jobs. Small problems dispatch here from the
//! public entry points, where packing overhead would outweigh the
//! register-tiled engine (the cutoff is [`crate::kernel::PACK_MIN_MADDS`]
//! multiply-adds). And the benches measure them side by side with the
//! packed engine, so speedup ratios come from one build and one run
//! (`BENCH_dense.json`), not from comparing binaries.

use crate::gemm::{axpy, scale_cols};
use crate::potrf::{potrf_unblocked_offset, PotrfError, POTRF_BLOCK};
use crate::{Scalar, Transpose};

/// Accumulate `C += α·op(A)·op(B)` with the seed loop nests (`β` already
/// applied by the caller).
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_accum<T: Scalar>(
    transa: Transpose,
    transb: Transpose,
    m: usize,
    n: usize,
    kk: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    match (transa, transb) {
        (Transpose::No, Transpose::No) => {
            // j-l-i loop: inner axpy over contiguous columns of A and C.
            for j in 0..n {
                let cj = &mut c[j * ldc..j * ldc + m];
                for l in 0..kk {
                    let blj = alpha * b[l + j * ldb];
                    if blj == T::ZERO {
                        continue;
                    }
                    let al = &a[l * lda..l * lda + m];
                    axpy(blj, al, cj);
                }
            }
        }
        (Transpose::No, Transpose::Yes) => {
            // C += alpha * A * B^T, B stored n × kk.
            for j in 0..n {
                let cj = &mut c[j * ldc..j * ldc + m];
                for l in 0..kk {
                    let blj = alpha * b[j + l * ldb];
                    if blj == T::ZERO {
                        continue;
                    }
                    let al = &a[l * lda..l * lda + m];
                    axpy(blj, al, cj);
                }
            }
        }
        (Transpose::Yes, Transpose::No) => {
            // C += alpha * A^T * B, A stored kk × m: dot products down columns.
            for j in 0..n {
                let bj = &b[j * ldb..j * ldb + kk];
                for i in 0..m {
                    let ai = &a[i * lda..i * lda + kk];
                    let dot: T = ai.iter().zip(bj).map(|(&x, &y)| x * y).sum();
                    c[i + j * ldc] += alpha * dot;
                }
            }
        }
        (Transpose::Yes, Transpose::Yes) => {
            // C += alpha * A^T * B^T — rare; simple loop nest.
            for j in 0..n {
                for i in 0..m {
                    let mut acc = T::ZERO;
                    for l in 0..kk {
                        acc += a[l + i * lda] * b[j + l * ldb];
                    }
                    c[i + j * ldc] += alpha * acc;
                }
            }
        }
    }
}

/// Seed `gemm`: `C ← α·op(A)·op(B) + β·C` without packing (benchmark
/// baseline).
#[allow(clippy::too_many_arguments)]
pub fn gemm<T: Scalar>(
    transa: Transpose,
    transb: Transpose,
    m: usize,
    n: usize,
    kk: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    scale_cols(m, n, beta, c, ldc);
    if kk == 0 || alpha == T::ZERO {
        return;
    }
    gemm_accum(transa, transb, m, n, kk, alpha, a, lda, b, ldb, c, ldc);
}

/// Accumulate the lower triangle of `C += α·A·Aᵀ` with the seed loops (`β`
/// already applied).
pub(crate) fn syrk_accum<T: Scalar>(
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    c: &mut [T],
    ldc: usize,
) {
    // Block over the contraction dimension so the active columns of A stay
    // in cache; the inner loop is a contiguous axpy over rows j..n.
    const KC: usize = 128;
    for l0 in (0..k).step_by(KC) {
        let l1 = (l0 + KC).min(k);
        for j in 0..n {
            let (_, tail) = c.split_at_mut(j * ldc + j);
            let cj = &mut tail[..n - j];
            for l in l0..l1 {
                let ajl = alpha * a[j + l * lda];
                if ajl == T::ZERO {
                    continue;
                }
                let al = &a[j + l * lda..l * lda + n];
                for (cv, &av) in cj.iter_mut().zip(al) {
                    *cv += ajl * av;
                }
            }
        }
    }
}

/// Seed `syrk`: lower triangle of `C ← α·A·Aᵀ + β·C` (benchmark baseline).
pub fn syrk_lower<T: Scalar>(
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    if n == 0 {
        return;
    }
    crate::syrk::scale_lower(n, beta, c, ldc);
    if k == 0 || alpha == T::ZERO {
        return;
    }
    syrk_accum(n, k, alpha, a, lda, c, ldc);
}

/// Seed right-side solve `X·Lᵀ = B` (benchmark baseline; also the
/// diagonal-block solver of the blocked `trsm`).
pub fn trsm_right_lower_trans<T: Scalar>(
    m: usize,
    n: usize,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    // Column j of X depends on columns 0..j:
    //   X[:,j] = (B[:,j] − Σ_{l<j} X[:,l]·L[j,l]) / L[j,j]
    for j in 0..n {
        let (done, rest) = b.split_at_mut(j * ldb);
        let bj = &mut rest[..m];
        for l in 0..j {
            let ljl = a[j + l * lda];
            if ljl == T::ZERO {
                continue;
            }
            let xl = &done[l * ldb..l * ldb + m];
            for (bv, &xv) in bj.iter_mut().zip(xl) {
                *bv -= ljl * xv;
            }
        }
        let inv = T::ONE / a[j + j * lda];
        for bv in bj.iter_mut() {
            *bv *= inv;
        }
    }
}

/// Seed blocked Cholesky over the seed `trsm`/`syrk` (benchmark baseline).
pub fn potrf<T: Scalar>(n: usize, a: &mut [T], lda: usize) -> Result<(), PotrfError> {
    if n == 0 {
        return Ok(());
    }
    let nb = POTRF_BLOCK;
    let mut diag_scratch = vec![T::ZERO; nb.min(n) * nb.min(n)];
    let mut j = 0;
    while j < n {
        let jb = nb.min(n - j);
        let rest = n - j - jb;
        {
            let diag = &mut a[j * lda + j..];
            potrf_unblocked_offset(jb, diag, lda, j)?;
        }
        if rest > 0 {
            for c in 0..jb {
                for r in c..jb {
                    diag_scratch[r + c * jb] = a[(j + r) + (j + c) * lda];
                }
            }
            let below = &mut a[j * lda + j + jb..];
            trsm_right_lower_trans(rest, jb, &diag_scratch, jb, below, lda);
            let (panel_cols, trailing) = a.split_at_mut((j + jb) * lda);
            let panel = &panel_cols[j * lda + j + jb..];
            let c = &mut trailing[j + jb..];
            syrk_lower(rest, jb, -T::ONE, panel, lda, T::ONE, c, lda);
        }
        j += jb;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::random_spd;

    #[test]
    fn naive_potrf_reconstructs() {
        let n = 90;
        let a0 = random_spd::<f64>(n, 5);
        let mut a = a0.clone();
        potrf(n, a.as_mut_slice(), n).unwrap();
        a.zero_upper();
        let mut sym = a0.clone();
        sym.symmetrize_from_lower();
        let recon = a.matmul(&a.transpose());
        assert!(recon.max_abs_diff(&sym) < 1e-8 * n as f64);
    }
}
