//! The packed, register-tiled kernel engine.
//!
//! One macro-kernel serves `gemm` (all four transpose combinations), the
//! bulk of `syrk` (through a lower-triangle write mask) and, via those two,
//! `trsm` and `potrf`. Structure is the classical three-level cache blocking
//! of Goto/BLIS:
//!
//! * `NC`-wide column slabs of `C` (also the multithreading grain),
//! * `KC`-deep contraction blocks, packed `op(B)` panel per `(jc, pc)`,
//! * `MC`-tall row blocks, packed `op(A)` panel per `(ic, pc)`,
//! * an `MR × NR` register micro-kernel over the packed slivers whose
//!   accumulator is an explicit `[[T; MR]; NR]` array, written so LLVM
//!   autovectorizes the inner loop into FMA chains for `f32` and `f64`.
//!
//! # Determinism
//!
//! For a fixed build, results are **bitwise identical regardless of thread
//! count**. Each element `C[i, j]` accumulates its `k` products in an order
//! fixed by the `pc` loop (ascending) and the micro-kernel depth loop
//! (ascending within a block): threads partition `C` into disjoint *column*
//! slabs, and nothing about the per-column summation order depends on where
//! the slab boundaries fall. The `ic`/`jc`/`jr`/`ir` loops only choose
//! *when* a given `(i, j, pc)` contribution happens, never its operand
//! order, and `alpha`/`beta` are applied exactly once per element.

use crate::arena::with_pack_buffers;
use crate::pack::{pack_a, pack_b, slivers_a, slivers_b, OpView};
use crate::Scalar;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Micro-tile rows. 16 keeps an f64 accumulator column in two 512-bit
/// registers (one for f32) so the full `MR × NR` tile fits the vector
/// register file.
pub(crate) const MR: usize = 16;
/// Micro-tile columns.
pub(crate) const NR: usize = 8;
/// Contraction block depth: one packed `A` sliver pair per iteration stays
/// L1-resident while streaming `B`.
pub(crate) const KC: usize = 256;
/// Row block height: the packed `MC × KC` `A` panel targets L2.
pub(crate) const MC: usize = 128;
/// Column slab width: the packed `KC × NC` `B` panel targets L3; also the
/// unit in which threads claim work.
pub(crate) const NC: usize = 512;

/// Problems below this many multiply-adds dispatch to the seed loop nests:
/// packing two panels costs O(mk + kn) stores that a tiny product never
/// earns back.
pub(crate) const PACK_MIN_MADDS: usize = 8192;

/// Problems below this many multiply-adds are not worth threading.
const PAR_MIN_MADDS: usize = 1 << 21;

/// Requested worker-thread cap; 0 means "ask the OS".
static MAX_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Cap the number of worker threads the dense kernels may use. `0` restores
/// the default (the machine's available parallelism). Thread count never
/// changes results: see the module notes on determinism.
pub fn set_num_threads(n: usize) {
    MAX_THREADS.store(n, Ordering::Relaxed);
}

/// The raw requested cap as last passed to [`set_num_threads`] (`0` =
/// "ask the OS"). Unlike [`num_threads`] this does not resolve `0`, so a
/// caller that temporarily overrides the cap can restore it exactly.
pub fn thread_cap() -> usize {
    MAX_THREADS.load(Ordering::Relaxed)
}

/// The worker-thread cap currently in effect.
pub fn num_threads() -> usize {
    // `available_parallelism` re-reads cgroup state on every call (>10 µs on
    // some kernels), which would dwarf a small kernel invocation — query the
    // OS once.
    static OS_THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    match MAX_THREADS.load(Ordering::Relaxed) {
        0 => {
            *OS_THREADS.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
        }
        n => n,
    }
}

/// `C ← C + α·op(A)·op(B)` through the packed engine, with an optional
/// lower-triangle write mask for `syrk`: `mask = Some(d)` writes element
/// `(i, j)` only when `i ≥ j + d` (`β` handling happens in the callers,
/// which scale `C` exactly once up front).
pub(crate) fn gemm_engine<T: Scalar>(
    m: usize,
    n: usize,
    kk: usize,
    alpha: T,
    a: OpView<'_, T>,
    b: OpView<'_, T>,
    c: &mut [T],
    ldc: usize,
    mask: Option<isize>,
) {
    let nt = {
        let t = num_threads();
        if t <= 1 || m.saturating_mul(n).saturating_mul(kk) < PAR_MIN_MADDS {
            1
        } else {
            t.min(n.div_ceil(NR))
        }
    };
    if nt <= 1 {
        gemm_slab(m, n, kk, alpha, a, b, 0, c, ldc, mask);
        return;
    }
    // Disjoint NR-aligned column slabs: each worker owns its columns of C
    // outright, so no synchronisation is needed and per-column summation
    // order (hence the bits of the result) is identical for every nt.
    let chunk = n.div_ceil(nt).next_multiple_of(NR);
    std::thread::scope(|s| {
        let mut rest = c;
        let mut col0 = 0usize;
        while col0 < n {
            let cols = chunk.min(n - col0);
            let take = if col0 + cols < n { cols * ldc } else { rest.len() };
            let (mine, tail) = rest.split_at_mut(take);
            rest = tail;
            let d = mask.map(|d| d + col0 as isize);
            s.spawn(move || gemm_slab(m, cols, kk, alpha, a, b, col0, mine, ldc, d));
            col0 += cols;
        }
    });
}

/// One worker's share: columns `[bcol0, bcol0 + n)` of the global problem,
/// with `c` pointing at the slab's first column. `mask` is already
/// slab-local (`i ≥ j_local + d`, `i` a global row index).
#[allow(clippy::too_many_arguments)]
fn gemm_slab<T: Scalar>(
    m: usize,
    n: usize,
    kk: usize,
    alpha: T,
    a: OpView<'_, T>,
    b: OpView<'_, T>,
    bcol0: usize,
    c: &mut [T],
    ldc: usize,
    mask: Option<isize>,
) {
    let a_len = slivers_a(m.min(MC)) * MR * kk.min(KC);
    let b_len = slivers_b(n.min(NC)) * NR * kk.min(KC);
    with_pack_buffers(a_len, b_len, |a_buf: &mut [T], b_buf: &mut [T]| {
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..kk).step_by(KC) {
                let kc = KC.min(kk - pc);
                let bp = &mut b_buf[..slivers_b(nc) * NR * kc];
                pack_b(b, pc, bcol0 + jc, kc, nc, bp);
                for ic in (0..m).step_by(MC) {
                    let mc = MC.min(m - ic);
                    // d_mk translates the mask to macro-tile coordinates:
                    // write (ir + i, jr + j) iff ir + i ≥ jr + j + d_mk.
                    let d_mk = match mask {
                        Some(d) => {
                            let d_mk = d + jc as isize - ic as isize;
                            if (mc as isize - 1) < d_mk {
                                continue; // entire block above the diagonal
                            }
                            Some(d_mk)
                        }
                        None => None,
                    };
                    let ap = &mut a_buf[..slivers_a(mc) * MR * kc];
                    pack_a(a, ic, pc, mc, kc, ap);
                    let c_block = &mut c[jc * ldc + ic..];
                    macro_kernel(mc, nc, kc, alpha, ap, bp, c_block, ldc, d_mk);
                }
            }
        }
    });
}

/// Packed `mc × nc × kc` block product: `C_block += α · Ap · Bp` with `C`
/// addressed at the block origin.
#[allow(clippy::too_many_arguments)]
fn macro_kernel<T: Scalar>(
    mc: usize,
    nc: usize,
    kc: usize,
    alpha: T,
    ap: &[T],
    bp: &[T],
    c: &mut [T],
    ldc: usize,
    mask: Option<isize>,
) {
    for (sb, bsl) in bp.chunks_exact(kc * NR).enumerate() {
        let jr = sb * NR;
        let nr_eff = NR.min(nc - jr);
        for (sa, asl) in ap.chunks_exact(kc * MR).enumerate() {
            let ir = sa * MR;
            let mr_eff = MR.min(mc - ir);
            if let Some(d) = mask {
                // Tile rows [ir, ir+mr_eff) × cols [jr, jr+nr_eff).
                if (ir + mr_eff) as isize - 1 < jr as isize + d {
                    continue; // fully above the diagonal
                }
                let acc = T::micro_tile(asl, bsl);
                if ir as isize >= jr as isize + (nr_eff as isize - 1) + d {
                    write_tile(&acc, alpha, c, ldc, ir, jr, mr_eff, nr_eff);
                } else {
                    write_tile_masked(&acc, alpha, c, ldc, ir, jr, mr_eff, nr_eff, d);
                }
            } else {
                let acc = T::micro_tile(asl, bsl);
                write_tile(&acc, alpha, c, ldc, ir, jr, mr_eff, nr_eff);
            }
        }
    }
}

/// The portable register micro-kernel: a full `MR × NR` rank-`kc` product
/// of one packed `A` sliver against one packed `B` sliver. The accumulator
/// array lives in vector registers; each depth step is `MR/width` loads of
/// `A`, `NR` broadcasts of `B` and `MR·NR/width` FMAs. `Scalar::micro_tile`
/// dispatches here unless a hand-vectorized variant applies (`simd.rs`);
/// all variants agree bitwise.
#[inline(always)]
pub(crate) fn micro_tile_generic<T: Scalar>(asl: &[T], bsl: &[T]) -> [[T; MR]; NR] {
    let mut acc = [[T::ZERO; MR]; NR];
    for (al, bl) in asl.chunks_exact(MR).zip(bsl.chunks_exact(NR)) {
        let al: &[T; MR] = al.try_into().unwrap();
        let bl: &[T; NR] = bl.try_into().unwrap();
        for j in 0..NR {
            let bj = bl[j];
            for i in 0..MR {
                acc[j][i] = al[i].mul_add(bj, acc[j][i]);
            }
        }
    }
    acc
}

/// `C_tile += α · acc` for a (possibly partial) tile at `(ir, jr)`.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn write_tile<T: Scalar>(
    acc: &[[T; MR]; NR],
    alpha: T,
    c: &mut [T],
    ldc: usize,
    ir: usize,
    jr: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    for (j, accj) in acc.iter().enumerate().take(nr_eff) {
        let col = &mut c[(jr + j) * ldc + ir..(jr + j) * ldc + ir + mr_eff];
        for (cv, &av) in col.iter_mut().zip(accj.iter()) {
            *cv = av.mul_add(alpha, *cv);
        }
    }
}

/// Masked writeback for tiles straddling the diagonal: element `(ir+i,
/// jr+j)` is stored only when `ir+i ≥ jr+j+d`.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn write_tile_masked<T: Scalar>(
    acc: &[[T; MR]; NR],
    alpha: T,
    c: &mut [T],
    ldc: usize,
    ir: usize,
    jr: usize,
    mr_eff: usize,
    nr_eff: usize,
    d: isize,
) {
    for (j, accj) in acc.iter().enumerate().take(nr_eff) {
        // First in-triangle row of this column, clamped into the tile.
        let cut = (jr + j) as isize + d - ir as isize;
        let i0 = cut.clamp(0, mr_eff as isize) as usize;
        let base = (jr + j) * ldc + ir;
        let col = &mut c[base + i0..base + mr_eff];
        for (cv, &av) in col.iter_mut().zip(accj[i0..mr_eff].iter()) {
            *cv = av.mul_add(alpha, *cv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    fn engine_vs_loops(m: usize, n: usize, kk: usize, ta: bool, tb: bool, mask: Option<isize>) {
        let a = vals(m * kk, 1);
        let b = vals(kk * n, 2);
        let c0 = vals(m * n, 3);
        let av = OpView { data: &a[..], ld: if ta { kk } else { m }, trans: ta };
        let bv = OpView { data: &b[..], ld: if tb { n } else { kk }, trans: tb };
        let mut c = c0.clone();
        gemm_engine(m, n, kk, 0.5, av, bv, &mut c, m, mask);
        for j in 0..n {
            for i in 0..m {
                let written = mask.is_none_or(|d| i as isize >= j as isize + d);
                let mut want = c0[i + j * m];
                if written {
                    for l in 0..kk {
                        want += 0.5 * av.at(i, l) * bv.at(l, j);
                    }
                }
                let got = c[i + j * m];
                assert!(
                    (got - want).abs() < 1e-10,
                    "m={m} n={n} k={kk} ta={ta} tb={tb} mask={mask:?} ({i},{j}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn engine_matches_loops_all_orientations() {
        for &(m, n, kk) in &[(1, 1, 1), (7, 5, 9), (16, 8, 4), (33, 19, 70), (65, 40, 3)] {
            for ta in [false, true] {
                for tb in [false, true] {
                    engine_vs_loops(m, n, kk, ta, tb, None);
                }
            }
        }
    }

    #[test]
    fn engine_lower_mask() {
        for &(n, kk) in &[(5, 3), (17, 17), (40, 9), (129, 20)] {
            engine_vs_loops(n, n, kk, false, false, Some(0));
            engine_vs_loops(n, n, kk, false, true, Some(0));
        }
        // Non-zero diagonal offsets.
        engine_vs_loops(20, 20, 6, false, false, Some(3));
        engine_vs_loops(20, 20, 6, false, false, Some(-4));
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        // Big enough to clear PAR_MIN_MADDS so threading actually engages.
        let (m, n, kk) = (70, 300, 130);
        let a = vals(m * kk, 4);
        let b = vals(kk * n, 5);
        let c0 = vals(m * n, 6);
        let av = OpView { data: &a[..], ld: m, trans: false };
        let bv = OpView { data: &b[..], ld: kk, trans: false };
        let run = |threads: usize| {
            set_num_threads(threads);
            let mut c = c0.clone();
            // Force the parallel path decision to depend only on `threads`.
            gemm_engine(m, n, kk, 1.0, av, bv, &mut c, m, None);
            set_num_threads(0);
            c
        };
        let c1 = run(1);
        for t in [2, 3, 8] {
            let ct = run(t);
            assert!(c1.iter().zip(&ct).all(|(x, y)| x.to_bits() == y.to_bits()), "t={t}");
        }
    }
}
