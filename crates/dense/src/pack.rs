//! Panel packing for the blocked kernel engine.
//!
//! The macro-kernel never touches strided user memory in its inner loops:
//! before a block of the contraction runs, the active `mc × kc` piece of
//! `op(A)` is repacked into contiguous `MR`-row slivers and the `kc × nc`
//! piece of `op(B)` into `NR`-column slivers. Packing absorbs both transpose
//! flags — every one of the four `gemm` transpose combinations feeds the
//! same micro-kernel — and zero-pads partial edge slivers so the
//! micro-kernel always runs at full `MR × NR` width.

use crate::kernel::{MR, NR};
use crate::Scalar;

/// A read-only view of one `gemm` operand with its transpose flag resolved
/// at access time: `at(r, c)` is element `(r, c)` of `op(X)`.
#[derive(Clone, Copy)]
pub(crate) struct OpView<'a, T> {
    /// Backing column-major storage.
    pub data: &'a [T],
    /// Leading dimension of the storage (not of `op(X)`).
    pub ld: usize,
    /// Whether `op(X) = Xᵀ`.
    pub trans: bool,
}

impl<T: Scalar> OpView<'_, T> {
    #[inline(always)]
    pub fn at(&self, r: usize, c: usize) -> T {
        if self.trans {
            self.data[c + r * self.ld]
        } else {
            self.data[r + c * self.ld]
        }
    }
}

/// Number of `MR`-row slivers covering `mc` rows.
#[inline]
pub(crate) fn slivers_a(mc: usize) -> usize {
    mc.div_ceil(MR)
}

/// Number of `NR`-column slivers covering `nc` columns.
#[inline]
pub(crate) fn slivers_b(nc: usize) -> usize {
    nc.div_ceil(NR)
}

/// Pack the `mc × kc` block of `op(A)` starting at `(row0, col0)` into
/// `out`, laid out as `slivers_a(mc)` slivers of `kc · MR` elements: within
/// a sliver, the `MR` rows of depth step `l` are contiguous. Rows past `mc`
/// in the last sliver are zero-filled.
pub(crate) fn pack_a<T: Scalar>(
    a: OpView<'_, T>,
    row0: usize,
    col0: usize,
    mc: usize,
    kc: usize,
    out: &mut [T],
) {
    debug_assert!(out.len() >= slivers_a(mc) * kc * MR);
    for (s, sliver) in out.chunks_exact_mut(kc * MR).take(slivers_a(mc)).enumerate() {
        let ir = s * MR;
        let rows = MR.min(mc - ir);
        if !a.trans {
            // Columns of A are contiguous: copy `rows` elements per depth.
            for (l, dst) in sliver.chunks_exact_mut(MR).enumerate() {
                let src0 = (row0 + ir) + (col0 + l) * a.ld;
                dst[..rows].copy_from_slice(&a.data[src0..src0 + rows]);
                dst[rows..].fill(T::ZERO);
            }
        } else {
            for (l, dst) in sliver.chunks_exact_mut(MR).enumerate() {
                for (i, d) in dst.iter_mut().enumerate().take(rows) {
                    *d = a.at(row0 + ir + i, col0 + l);
                }
                dst[rows..].fill(T::ZERO);
            }
        }
    }
}

/// Pack the `kc × nc` block of `op(B)` starting at `(row0, col0)` into
/// `out`, laid out as `slivers_b(nc)` slivers of `kc · NR` elements: within
/// a sliver, the `NR` columns at depth step `l` are contiguous. Columns past
/// `nc` in the last sliver are zero-filled.
pub(crate) fn pack_b<T: Scalar>(
    b: OpView<'_, T>,
    row0: usize,
    col0: usize,
    kc: usize,
    nc: usize,
    out: &mut [T],
) {
    debug_assert!(out.len() >= slivers_b(nc) * kc * NR);
    for (s, sliver) in out.chunks_exact_mut(kc * NR).take(slivers_b(nc)).enumerate() {
        let jr = s * NR;
        let cols = NR.min(nc - jr);
        if b.trans {
            // `op(B)` rows are contiguous in storage: copy `cols` per depth.
            for (l, dst) in sliver.chunks_exact_mut(NR).enumerate() {
                let src0 = (col0 + jr) + (row0 + l) * b.ld;
                dst[..cols].copy_from_slice(&b.data[src0..src0 + cols]);
                dst[cols..].fill(T::ZERO);
            }
        } else {
            for (l, dst) in sliver.chunks_exact_mut(NR).enumerate() {
                for (j, d) in dst.iter_mut().enumerate().take(cols) {
                    *d = b.at(row0 + l, col0 + jr + j);
                }
                dst[cols..].fill(T::ZERO);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64).collect()
    }

    #[test]
    fn pack_a_notrans_matches_elements() {
        // A is 5×3 stored with ld 7.
        let data = seq(7 * 3);
        let v = OpView { data: &data, ld: 7, trans: false };
        let mc = 5;
        let kc = 3;
        let mut out = vec![-1.0; slivers_a(mc) * kc * MR];
        pack_a(v, 0, 0, mc, kc, &mut out);
        for s in 0..slivers_a(mc) {
            for l in 0..kc {
                for i in 0..MR {
                    let got = out[s * kc * MR + l * MR + i];
                    let r = s * MR + i;
                    let want = if r < mc { v.at(r, l) } else { 0.0 };
                    assert_eq!(got, want, "sliver {s} depth {l} row {i}");
                }
            }
        }
    }

    #[test]
    fn pack_a_trans_matches_elements() {
        // op(A) = Xᵀ where X is 4×6 stored ld 4; op(A) is 6×4.
        let data = seq(4 * 6);
        let v = OpView { data: &data, ld: 4, trans: true };
        let (mc, kc) = (6, 4);
        let mut out = vec![-1.0; slivers_a(mc) * kc * MR];
        pack_a(v, 0, 0, mc, kc, &mut out);
        for s in 0..slivers_a(mc) {
            for l in 0..kc {
                for i in 0..MR {
                    let r = s * MR + i;
                    let want = if r < mc { v.at(r, l) } else { 0.0 };
                    assert_eq!(out[s * kc * MR + l * MR + i], want);
                }
            }
        }
    }

    #[test]
    fn pack_b_both_orientations() {
        let data = seq(9 * 9);
        for trans in [false, true] {
            let v = OpView { data: &data, ld: 9, trans };
            let (kc, nc) = (4, 7);
            let mut out = vec![-1.0; slivers_b(nc) * kc * NR];
            pack_b(v, 2, 1, kc, nc, &mut out);
            for s in 0..slivers_b(nc) {
                for l in 0..kc {
                    for j in 0..NR {
                        let c = s * NR + j;
                        let want = if c < nc { v.at(2 + l, 1 + c) } else { 0.0 };
                        assert_eq!(out[s * kc * NR + l * NR + j], want, "trans={trans}");
                    }
                }
            }
        }
    }

    #[test]
    fn pack_respects_offsets() {
        let data = seq(10 * 10);
        let v = OpView { data: &data, ld: 10, trans: false };
        let (mc, kc) = (3, 2);
        let mut out = vec![0.0; slivers_a(mc) * kc * MR];
        pack_a(v, 4, 5, mc, kc, &mut out);
        assert_eq!(out[0], v.at(4, 5));
        assert_eq!(out[1], v.at(5, 5));
        assert_eq!(out[MR], v.at(4, 6));
    }
}
