//! Triangular solves with multiple right-hand sides.
//!
//! The factor-update operation needs the *right-side, lower, transposed*
//! variant `X·Lᵀ = B` (computing the sub-diagonal panel `L₂ = A₂·L₁⁻ᵀ`,
//! Figure 1). The supernodal triangular solve phase additionally needs the
//! left-side variants `L·X = B` (forward) and `Lᵀ·X = B` (backward).

use crate::Scalar;

/// Solve `X·Lᵀ = B` in place: `B` (`m × n`, leading dimension `ldb`) is
/// overwritten by `X`; `L` is `n × n` lower triangular (leading dimension
/// `lda`), non-unit diagonal.
pub fn trsm_right_lower_trans<T: Scalar>(
    m: usize,
    n: usize,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    debug_assert!(lda >= n && a.len() >= (n - 1) * lda + n);
    debug_assert!(ldb >= m && b.len() >= (n - 1) * ldb + m);
    // Column j of X depends on columns 0..j:
    //   X[:,j] = (B[:,j] − Σ_{l<j} X[:,l]·L[j,l]) / L[j,j]
    for j in 0..n {
        let (done, rest) = b.split_at_mut(j * ldb);
        let bj = &mut rest[..m];
        for l in 0..j {
            let ljl = a[j + l * lda];
            if ljl == T::ZERO {
                continue;
            }
            let xl = &done[l * ldb..l * ldb + m];
            for (bv, &xv) in bj.iter_mut().zip(xl) {
                *bv -= ljl * xv;
            }
        }
        let inv = T::ONE / a[j + j * lda];
        for bv in bj.iter_mut() {
            *bv *= inv;
        }
    }
}

/// Solve `L·X = B` in place (forward substitution): `B` is `n × nrhs`
/// (leading dimension `ldb`), `L` is `n × n` lower triangular (leading
/// dimension `lda`), non-unit diagonal.
pub fn trsm_left_lower_notrans<T: Scalar>(
    n: usize,
    nrhs: usize,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    if n == 0 || nrhs == 0 {
        return;
    }
    debug_assert!(lda >= n && a.len() >= (n - 1) * lda + n);
    debug_assert!(ldb >= n && b.len() >= (nrhs - 1) * ldb + n);
    for r in 0..nrhs {
        let bcol = &mut b[r * ldb..r * ldb + n];
        for j in 0..n {
            let xj = bcol[j] / a[j + j * lda];
            bcol[j] = xj;
            if xj == T::ZERO {
                continue;
            }
            let (_, below) = bcol.split_at_mut(j + 1);
            let acol = &a[j * lda + j + 1..j * lda + n];
            for (bv, &av) in below.iter_mut().zip(acol) {
                *bv -= xj * av;
            }
        }
    }
}

/// Solve `Lᵀ·X = B` in place (backward substitution): dimensions as in
/// [`trsm_left_lower_notrans`].
pub fn trsm_left_lower_trans<T: Scalar>(
    n: usize,
    nrhs: usize,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    if n == 0 || nrhs == 0 {
        return;
    }
    debug_assert!(lda >= n && a.len() >= (n - 1) * lda + n);
    debug_assert!(ldb >= n && b.len() >= (nrhs - 1) * ldb + n);
    for r in 0..nrhs {
        let bcol = &mut b[r * ldb..r * ldb + n];
        for j in (0..n).rev() {
            // x[j] = (b[j] − Σ_{i>j} L[i,j]·x[i]) / L[j,j]
            let acol = &a[j * lda + j + 1..j * lda + n];
            let below = &bcol[j + 1..n];
            let dot: T = acol.iter().zip(below).map(|(&av, &xv)| av * xv).sum();
            bcol[j] = (bcol[j] - dot) / a[j + j * lda];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::random_spd;
    use crate::potrf::potrf;
    use crate::DenseMat;

    fn lower_factor(n: usize, seed: u64) -> DenseMat<f64> {
        let mut a = random_spd::<f64>(n, seed);
        potrf(n, a.as_mut_slice(), n).unwrap();
        a.zero_upper();
        a
    }

    fn mat(rows: usize, cols: usize, seed: u64) -> DenseMat<f64> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        DenseMat::from_fn(rows, cols, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
    }

    #[test]
    fn right_lower_trans_solves() {
        for &(m, n) in &[(1, 1), (5, 3), (20, 20), (3, 40), (64, 17)] {
            let l = lower_factor(n, 3 + n as u64);
            let b0 = mat(m, n, 99);
            let mut x = b0.clone();
            trsm_right_lower_trans(m, n, l.as_slice(), n, x.as_mut_slice(), m);
            // Check X·Lᵀ == B.
            let recon = x.matmul(&l.transpose());
            assert!(recon.max_abs_diff(&b0) < 1e-9, "m={m} n={n}");
        }
    }

    #[test]
    fn left_lower_notrans_solves() {
        for &(n, nrhs) in &[(1, 1), (6, 2), (30, 5)] {
            let l = lower_factor(n, 11 + n as u64);
            let b0 = mat(n, nrhs, 5);
            let mut x = b0.clone();
            trsm_left_lower_notrans(n, nrhs, l.as_slice(), n, x.as_mut_slice(), n);
            let recon = l.matmul(&x);
            assert!(recon.max_abs_diff(&b0) < 1e-9);
        }
    }

    #[test]
    fn left_lower_trans_solves() {
        for &(n, nrhs) in &[(1, 1), (6, 2), (30, 5)] {
            let l = lower_factor(n, 17 + n as u64);
            let b0 = mat(n, nrhs, 6);
            let mut x = b0.clone();
            trsm_left_lower_trans(n, nrhs, l.as_slice(), n, x.as_mut_slice(), n);
            let recon = l.transpose().matmul(&x);
            assert!(recon.max_abs_diff(&b0) < 1e-9);
        }
    }

    #[test]
    fn forward_then_backward_is_full_solve() {
        // L·Lᵀ·x = b solved in two stages must reproduce A·x = b.
        let n = 25;
        let a = random_spd::<f64>(n, 123);
        let mut l = a.clone();
        potrf(n, l.as_mut_slice(), n).unwrap();
        l.zero_upper();
        let xtrue = mat(n, 1, 7);
        let mut sym = a.clone();
        sym.symmetrize_from_lower();
        let b = sym.matmul(&xtrue);
        let mut x = b.clone();
        trsm_left_lower_notrans(n, 1, l.as_slice(), n, x.as_mut_slice(), n);
        trsm_left_lower_trans(n, 1, l.as_slice(), n, x.as_mut_slice(), n);
        assert!(x.max_abs_diff(&xtrue) < 1e-8);
    }

    #[test]
    fn identity_l_is_noop() {
        let n = 4;
        let l = DenseMat::<f64>::identity(n);
        let b0 = mat(6, n, 9);
        let mut x = b0.clone();
        trsm_right_lower_trans(6, n, l.as_slice(), n, x.as_mut_slice(), 6);
        assert!(x.max_abs_diff(&b0) < 1e-15);
    }

    #[test]
    fn respects_ldb_stride() {
        // Solve on a 3-row sub-block of a 5-row buffer (ldb = 5).
        let n = 3;
        let m = 3;
        let l = lower_factor(n, 42);
        let mut buf = vec![0.0f64; 5 * n];
        let b0 = mat(m, n, 13);
        for j in 0..n {
            for i in 0..m {
                buf[i + j * 5] = b0[(i, j)];
            }
            buf[3 + j * 5] = -1.0;
            buf[4 + j * 5] = -2.0;
        }
        trsm_right_lower_trans(m, n, l.as_slice(), n, &mut buf, 5);
        for j in 0..n {
            assert_eq!(buf[3 + j * 5], -1.0);
            assert_eq!(buf[4 + j * 5], -2.0);
        }
    }
}
