//! Triangular solves with multiple right-hand sides.
//!
//! The factor-update operation needs the *right-side, lower, transposed*
//! variant `X·Lᵀ = B` (computing the sub-diagonal panel `L₂ = A₂·L₁⁻ᵀ`,
//! Figure 1). The supernodal triangular solve phase additionally needs the
//! left-side variants `L·X = B` (forward) and `Lᵀ·X = B` (backward).
//!
//! All three are blocked right-looking algorithms: a width-[`TRSM_BLOCK`]
//! diagonal block is solved with the seed substitution loops, then the
//! entire remaining trailing region is updated in one [`gemm`] call — which
//! routes the O(n²)-per-block bulk of the work through the packed engine.

use crate::gemm::{gemm, gemm_multi_rhs, Transpose};
use crate::Scalar;

/// Diagonal-block width of the blocked triangular solves.
const TRSM_BLOCK: usize = 16;

/// Solve `X·Lᵀ = B` in place: `B` (`m × n`, leading dimension `ldb`) is
/// overwritten by `X`; `L` is `n × n` lower triangular (leading dimension
/// `lda`), non-unit diagonal.
pub fn trsm_right_lower_trans<T: Scalar>(
    m: usize,
    n: usize,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    debug_assert!(lda >= n && a.len() >= (n - 1) * lda + n);
    debug_assert!(ldb >= m && b.len() >= (n - 1) * ldb + m);
    if n <= TRSM_BLOCK {
        return crate::naive::trsm_right_lower_trans(m, n, a, lda, b, ldb);
    }
    // Right-looking: solve the columns of one diagonal block, then push the
    // rank-w update X_blk·L₂₁ᵀ into every trailing column at once.
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + TRSM_BLOCK).min(n);
        let w = j1 - j0;
        {
            let bj = &mut b[j0 * ldb..];
            crate::naive::trsm_right_lower_trans(m, w, &a[j0 + j0 * lda..], lda, bj, ldb);
        }
        if j1 < n {
            // Trailing columns and the solved block live in disjoint column
            // ranges of B, so a split borrows both sides without copies.
            let (head, trail) = b.split_at_mut(j1 * ldb);
            let xblk = &head[j0 * ldb..];
            let l21 = &a[j1 + j0 * lda..];
            gemm(
                Transpose::No,
                Transpose::Yes,
                m,
                n - j1,
                w,
                -T::ONE,
                xblk,
                ldb,
                l21,
                lda,
                T::ONE,
                trail,
                ldb,
            );
        }
        j0 = j1;
    }
}

/// Solve `L·X = B` in place (forward substitution): `B` is `n × nrhs`
/// (leading dimension `ldb`), `L` is `n × n` lower triangular (leading
/// dimension `lda`), non-unit diagonal.
pub fn trsm_left_lower_notrans<T: Scalar>(
    n: usize,
    nrhs: usize,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    left_lower_notrans_impl(n, nrhs, a, lda, b, ldb, false);
}

/// [`trsm_left_lower_notrans`] with the **RHS-count-invariant** kernel
/// dispatch of [`gemm_multi_rhs`]: column `j` of the solution is bitwise
/// identical to a single-RHS call on column `j` alone, for any `nrhs`. The
/// batched triangular-solve phase uses this variant so a blocked multi-RHS
/// solve can be compared bit-for-bit against a loop of single-RHS solves.
pub fn trsm_left_lower_notrans_multi<T: Scalar>(
    n: usize,
    nrhs: usize,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    left_lower_notrans_impl(n, nrhs, a, lda, b, ldb, true);
}

fn left_lower_notrans_impl<T: Scalar>(
    n: usize,
    nrhs: usize,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
    rhs_stable: bool,
) {
    if n == 0 || nrhs == 0 {
        return;
    }
    debug_assert!(lda >= n && a.len() >= (n - 1) * lda + n);
    debug_assert!(ldb >= n && b.len() >= (nrhs - 1) * ldb + n);
    if n <= TRSM_BLOCK {
        return left_notrans_block(n, nrhs, a, lda, b, ldb);
    }
    // The solved block's rows interleave with the trailing rows inside each
    // column of B, so stage the block in scratch for the aliasing-free gemm.
    let mut xbuf = vec![T::ZERO; TRSM_BLOCK * nrhs];
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + TRSM_BLOCK).min(n);
        let w = j1 - j0;
        left_notrans_block(w, nrhs, &a[j0 + j0 * lda..], lda, &mut b[j0..], ldb);
        if j1 < n {
            for r in 0..nrhs {
                xbuf[r * w..r * w + w].copy_from_slice(&b[j0 + r * ldb..j1 + r * ldb]);
            }
            let l21 = &a[j1 + j0 * lda..];
            if rhs_stable {
                gemm_multi_rhs(
                    Transpose::No,
                    n - j1,
                    nrhs,
                    w,
                    -T::ONE,
                    l21,
                    lda,
                    &xbuf[..w * nrhs],
                    w,
                    T::ONE,
                    &mut b[j1..],
                    ldb,
                );
            } else {
                gemm(
                    Transpose::No,
                    Transpose::No,
                    n - j1,
                    nrhs,
                    w,
                    -T::ONE,
                    l21,
                    lda,
                    &xbuf[..w * nrhs],
                    w,
                    T::ONE,
                    &mut b[j1..],
                    ldb,
                );
            }
        }
        j0 = j1;
    }
}

/// Solve `Lᵀ·X = B` in place (backward substitution): dimensions as in
/// [`trsm_left_lower_notrans`].
pub fn trsm_left_lower_trans<T: Scalar>(
    n: usize,
    nrhs: usize,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    left_lower_trans_impl(n, nrhs, a, lda, b, ldb, false);
}

/// [`trsm_left_lower_trans`] with the RHS-count-invariant dispatch of
/// [`gemm_multi_rhs`] — see [`trsm_left_lower_notrans_multi`].
pub fn trsm_left_lower_trans_multi<T: Scalar>(
    n: usize,
    nrhs: usize,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    left_lower_trans_impl(n, nrhs, a, lda, b, ldb, true);
}

fn left_lower_trans_impl<T: Scalar>(
    n: usize,
    nrhs: usize,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
    rhs_stable: bool,
) {
    if n == 0 || nrhs == 0 {
        return;
    }
    debug_assert!(lda >= n && a.len() >= (n - 1) * lda + n);
    debug_assert!(ldb >= n && b.len() >= (nrhs - 1) * ldb + n);
    if n <= TRSM_BLOCK {
        return left_trans_block(n, nrhs, a, lda, b, ldb);
    }
    // Blocks run bottom-up; each block is staged in scratch so its gemm
    // update can read the already-solved rows below it from B.
    let mut xbuf = vec![T::ZERO; TRSM_BLOCK * nrhs];
    let nblocks = n.div_ceil(TRSM_BLOCK);
    for blk in (0..nblocks).rev() {
        let j0 = blk * TRSM_BLOCK;
        let j1 = (j0 + TRSM_BLOCK).min(n);
        let w = j1 - j0;
        for r in 0..nrhs {
            xbuf[r * w..r * w + w].copy_from_slice(&b[j0 + r * ldb..j1 + r * ldb]);
        }
        if j1 < n {
            // xbuf −= L[j1.., j0..j1]ᵀ · X[j1..]
            let l21 = &a[j1 + j0 * lda..];
            if rhs_stable {
                gemm_multi_rhs(
                    Transpose::Yes,
                    w,
                    nrhs,
                    n - j1,
                    -T::ONE,
                    l21,
                    lda,
                    &b[j1..],
                    ldb,
                    T::ONE,
                    &mut xbuf[..w * nrhs],
                    w,
                );
            } else {
                gemm(
                    Transpose::Yes,
                    Transpose::No,
                    w,
                    nrhs,
                    n - j1,
                    -T::ONE,
                    l21,
                    lda,
                    &b[j1..],
                    ldb,
                    T::ONE,
                    &mut xbuf[..w * nrhs],
                    w,
                );
            }
        }
        left_trans_block(w, nrhs, &a[j0 + j0 * lda..], lda, &mut xbuf, w);
        for r in 0..nrhs {
            b[j0 + r * ldb..j1 + r * ldb].copy_from_slice(&xbuf[r * w..r * w + w]);
        }
    }
}

/// Seed forward substitution on one diagonal block.
fn left_notrans_block<T: Scalar>(
    n: usize,
    nrhs: usize,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    for r in 0..nrhs {
        let bcol = &mut b[r * ldb..r * ldb + n];
        for j in 0..n {
            let xj = bcol[j] / a[j + j * lda];
            bcol[j] = xj;
            if xj == T::ZERO {
                continue;
            }
            let (_, below) = bcol.split_at_mut(j + 1);
            let acol = &a[j * lda + j + 1..j * lda + n];
            for (bv, &av) in below.iter_mut().zip(acol) {
                *bv -= xj * av;
            }
        }
    }
}

/// Seed backward substitution on one diagonal block.
fn left_trans_block<T: Scalar>(
    n: usize,
    nrhs: usize,
    a: &[T],
    lda: usize,
    b: &mut [T],
    ldb: usize,
) {
    for r in 0..nrhs {
        let bcol = &mut b[r * ldb..r * ldb + n];
        for j in (0..n).rev() {
            // x[j] = (b[j] − Σ_{i>j} L[i,j]·x[i]) / L[j,j]
            let acol = &a[j * lda + j + 1..j * lda + n];
            let below = &bcol[j + 1..n];
            let dot: T = acol.iter().zip(below).map(|(&av, &xv)| av * xv).sum();
            bcol[j] = (bcol[j] - dot) / a[j + j * lda];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::random_spd;
    use crate::potrf::potrf;
    use crate::DenseMat;

    fn lower_factor(n: usize, seed: u64) -> DenseMat<f64> {
        let mut a = random_spd::<f64>(n, seed);
        potrf(n, a.as_mut_slice(), n).unwrap();
        a.zero_upper();
        a
    }

    fn mat(rows: usize, cols: usize, seed: u64) -> DenseMat<f64> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        DenseMat::from_fn(rows, cols, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
    }

    #[test]
    fn right_lower_trans_solves() {
        for &(m, n) in &[(1, 1), (5, 3), (20, 20), (3, 40), (64, 17)] {
            let l = lower_factor(n, 3 + n as u64);
            let b0 = mat(m, n, 99);
            let mut x = b0.clone();
            trsm_right_lower_trans(m, n, l.as_slice(), n, x.as_mut_slice(), m);
            // Check X·Lᵀ == B.
            let recon = x.matmul(&l.transpose());
            assert!(recon.max_abs_diff(&b0) < 1e-9, "m={m} n={n}");
        }
    }

    #[test]
    fn left_lower_notrans_solves() {
        for &(n, nrhs) in &[(1, 1), (6, 2), (30, 5)] {
            let l = lower_factor(n, 11 + n as u64);
            let b0 = mat(n, nrhs, 5);
            let mut x = b0.clone();
            trsm_left_lower_notrans(n, nrhs, l.as_slice(), n, x.as_mut_slice(), n);
            let recon = l.matmul(&x);
            assert!(recon.max_abs_diff(&b0) < 1e-9);
        }
    }

    #[test]
    fn left_lower_trans_solves() {
        for &(n, nrhs) in &[(1, 1), (6, 2), (30, 5)] {
            let l = lower_factor(n, 17 + n as u64);
            let b0 = mat(n, nrhs, 6);
            let mut x = b0.clone();
            trsm_left_lower_trans(n, nrhs, l.as_slice(), n, x.as_mut_slice(), n);
            let recon = l.transpose().matmul(&x);
            assert!(recon.max_abs_diff(&b0) < 1e-9);
        }
    }

    #[test]
    fn forward_then_backward_is_full_solve() {
        // L·Lᵀ·x = b solved in two stages must reproduce A·x = b.
        let n = 25;
        let a = random_spd::<f64>(n, 123);
        let mut l = a.clone();
        potrf(n, l.as_mut_slice(), n).unwrap();
        l.zero_upper();
        let xtrue = mat(n, 1, 7);
        let mut sym = a.clone();
        sym.symmetrize_from_lower();
        let b = sym.matmul(&xtrue);
        let mut x = b.clone();
        trsm_left_lower_notrans(n, 1, l.as_slice(), n, x.as_mut_slice(), n);
        trsm_left_lower_trans(n, 1, l.as_slice(), n, x.as_mut_slice(), n);
        assert!(x.max_abs_diff(&xtrue) < 1e-8);
    }

    #[test]
    fn identity_l_is_noop() {
        let n = 4;
        let l = DenseMat::<f64>::identity(n);
        let b0 = mat(6, n, 9);
        let mut x = b0.clone();
        trsm_right_lower_trans(6, n, l.as_slice(), n, x.as_mut_slice(), 6);
        assert!(x.max_abs_diff(&b0) < 1e-15);
    }

    #[test]
    fn multi_variants_solve() {
        for &(n, nrhs) in &[(1, 1), (6, 2), (30, 5), (90, 8)] {
            let l = lower_factor(n, 23 + n as u64);
            let b0 = mat(n, nrhs, 8);
            let mut x = b0.clone();
            trsm_left_lower_notrans_multi(n, nrhs, l.as_slice(), n, x.as_mut_slice(), n);
            assert!(l.matmul(&x).max_abs_diff(&b0) < 1e-9, "notrans n={n} nrhs={nrhs}");
            let mut y = b0.clone();
            trsm_left_lower_trans_multi(n, nrhs, l.as_slice(), n, y.as_mut_slice(), n);
            assert!(l.transpose().matmul(&y).max_abs_diff(&b0) < 1e-9, "trans n={n} nrhs={nrhs}");
        }
    }

    #[test]
    fn multi_variants_are_bitwise_rhs_count_invariant() {
        // n = 600 drives the trailing-update gemm well past PACK_MIN_MADDS,
        // where the plain `gemm` dispatch would pick different kernels for
        // nrhs = 1 vs nrhs = 8 — the `_multi` entries must not.
        let n = 600;
        let nrhs = 8;
        let l = lower_factor(n, 77);
        let b0 = mat(n, nrhs, 31);
        for forward in [true, false] {
            let mut batched = b0.clone();
            if forward {
                trsm_left_lower_notrans_multi(n, nrhs, l.as_slice(), n, batched.as_mut_slice(), n);
            } else {
                trsm_left_lower_trans_multi(n, nrhs, l.as_slice(), n, batched.as_mut_slice(), n);
            }
            for r in 0..nrhs {
                let mut col: Vec<f64> = (0..n).map(|i| b0[(i, r)]).collect();
                if forward {
                    trsm_left_lower_notrans_multi(n, 1, l.as_slice(), n, &mut col, n);
                } else {
                    trsm_left_lower_trans_multi(n, 1, l.as_slice(), n, &mut col, n);
                }
                for i in 0..n {
                    assert_eq!(
                        batched[(i, r)].to_bits(),
                        col[i].to_bits(),
                        "forward={forward} rhs={r} row={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_multi_rhs_is_bitwise_rhs_count_invariant() {
        use crate::gemm::gemm_multi_rhs;
        // m·kk = 640·40 = 25600 ≥ PACK_MIN_MADDS: every call below takes the
        // packed engine, regardless of nrhs.
        let (m, kk, nrhs) = (640, 40, 8);
        let a = mat(m, kk, 41);
        let b = mat(kk, nrhs, 42);
        let c0 = mat(m, nrhs, 43);
        let mut c = c0.clone();
        gemm_multi_rhs(
            Transpose::No,
            m,
            nrhs,
            kk,
            -1.0,
            a.as_slice(),
            m,
            b.as_slice(),
            kk,
            1.0,
            c.as_mut_slice(),
            m,
        );
        for r in 0..nrhs {
            let bcol: Vec<f64> = (0..kk).map(|i| b[(i, r)]).collect();
            let mut ccol: Vec<f64> = (0..m).map(|i| c0[(i, r)]).collect();
            gemm_multi_rhs(
                Transpose::No,
                m,
                1,
                kk,
                -1.0,
                a.as_slice(),
                m,
                &bcol,
                kk,
                1.0,
                &mut ccol,
                m,
            );
            for i in 0..m {
                assert_eq!(c[(i, r)].to_bits(), ccol[i].to_bits(), "rhs={r} row={i}");
            }
        }
    }

    #[test]
    fn respects_ldb_stride() {
        // Solve on a 3-row sub-block of a 5-row buffer (ldb = 5).
        let n = 3;
        let m = 3;
        let l = lower_factor(n, 42);
        let mut buf = vec![0.0f64; 5 * n];
        let b0 = mat(m, n, 13);
        for j in 0..n {
            for i in 0..m {
                buf[i + j * 5] = b0[(i, j)];
            }
            buf[3 + j * 5] = -1.0;
            buf[4 + j * 5] = -2.0;
        }
        trsm_right_lower_trans(m, n, l.as_slice(), n, &mut buf, 5);
        for j in 0..n {
            assert_eq!(buf[3 + j * 5], -1.0);
            assert_eq!(buf[4 + j * 5], -2.0);
        }
    }
}
