//! Naive reference implementations used to validate the optimized kernels.
//!
//! These are deliberately simple (textbook triple loops on [`DenseMat`])
//! so that their correctness is evident by inspection; every optimized
//! kernel is tested against them.

use crate::gemm::Transpose;
use crate::matrix::DenseMat;
use crate::potrf::PotrfError;
use crate::Scalar;

/// Reference `C ← α·op(A)·op(B) + β·C`.
pub fn gemm_ref<T: Scalar>(
    transa: Transpose,
    transb: Transpose,
    m: usize,
    n: usize,
    kk: usize,
    alpha: T,
    a: &DenseMat<T>,
    b: &DenseMat<T>,
    beta: T,
    c: &mut DenseMat<T>,
) {
    let ga = |i: usize, l: usize| match transa {
        Transpose::No => a[(i, l)],
        Transpose::Yes => a[(l, i)],
    };
    let gb = |l: usize, j: usize| match transb {
        Transpose::No => b[(l, j)],
        Transpose::Yes => b[(j, l)],
    };
    for j in 0..n {
        for i in 0..m {
            let mut acc = T::ZERO;
            for l in 0..kk {
                acc += ga(i, l) * gb(l, j);
            }
            c[(i, j)] = alpha * acc + beta * c[(i, j)];
        }
    }
}

/// Reference symmetric rank-k update (lower triangle): `C ← α·A·Aᵀ + β·C`.
pub fn syrk_ref<T: Scalar>(
    n: usize,
    k: usize,
    alpha: T,
    a: &DenseMat<T>,
    beta: T,
    c: &mut DenseMat<T>,
) {
    for j in 0..n {
        for i in j..n {
            let mut acc = T::ZERO;
            for l in 0..k {
                acc += a[(i, l)] * a[(j, l)];
            }
            c[(i, j)] = alpha * acc + beta * c[(i, j)];
        }
    }
}

/// Reference solve `X·Lᵀ = B` (in place on `b`), `l` lower triangular.
pub fn trsm_ref<T: Scalar>(l: &DenseMat<T>, b: &mut DenseMat<T>) {
    let n = l.rows();
    let m = b.rows();
    assert_eq!(b.cols(), n);
    for j in 0..n {
        for i in 0..m {
            let mut v = b[(i, j)];
            for p in 0..j {
                v -= b[(i, p)] * l[(j, p)];
            }
            b[(i, j)] = v / l[(j, j)];
        }
    }
}

/// Reference unblocked lower Cholesky (in place, lower triangle).
pub fn potrf_ref<T: Scalar>(a: &mut DenseMat<T>) -> Result<(), PotrfError> {
    let n = a.rows();
    assert_eq!(a.cols(), n);
    for j in 0..n {
        let mut d = a[(j, j)];
        for l in 0..j {
            let v = a[(j, l)];
            d -= v * v;
        }
        // `!(d > 0)` rather than `d <= 0`: NaN pivots must also fail.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(d > T::ZERO) || !d.is_finite() {
            return Err(PotrfError { column: j });
        }
        let djj = d.sqrt();
        a[(j, j)] = djj;
        for i in (j + 1)..n {
            let mut v = a[(i, j)];
            for l in 0..j {
                v -= a[(i, l)] * a[(j, l)];
            }
            a[(i, j)] = v / djj;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::random_spd;

    #[test]
    fn potrf_ref_reconstructs() {
        let n = 12;
        let a0 = random_spd::<f64>(n, 44);
        let mut l = a0.clone();
        potrf_ref(&mut l).unwrap();
        l.zero_upper();
        let mut sym = a0.clone();
        sym.symmetrize_from_lower();
        assert!(l.matmul(&l.transpose()).max_abs_diff(&sym) < 1e-9);
    }

    #[test]
    fn trsm_ref_solves() {
        let n = 8;
        let mut l = random_spd::<f64>(n, 45);
        potrf_ref(&mut l).unwrap();
        l.zero_upper();
        let b0 = DenseMat::<f64>::from_fn(5, n, |i, j| (i + 2 * j) as f64 - 3.0);
        let mut x = b0.clone();
        trsm_ref(&l, &mut x);
        assert!(x.matmul(&l.transpose()).max_abs_diff(&b0) < 1e-9);
    }
}
