//! Explicit AVX-512 micro-kernels.
//!
//! LLVM's autovectorizer turns the generic accumulator array into solid
//! 256-bit FMA code but refuses to widen it to 512-bit registers (and when
//! forced, it spills the accumulator and gathers/scatters it per depth
//! step). These hand-written variants keep the full `MR × NR` accumulator in
//! zmm registers. They compute *exactly* the same thing as the generic
//! micro-kernel — each element accumulates its products in ascending depth
//! order with one fused multiply-add per product — so results are bitwise
//! identical to the portable path.

#![cfg(target_arch = "x86_64")]

use crate::kernel::{MR, NR};
use core::arch::x86_64::*;

/// `true` when the running CPU supports the zmm micro-kernels. The macro
/// caches its answer, so calling this per micro-tile is fine.
#[inline(always)]
pub(crate) fn avx512_available() -> bool {
    std::arch::is_x86_feature_detected!("avx512f")
}

/// f64 `MR × NR` rank-`kc` micro-tile over packed slivers. Two zmm per
/// accumulator column (16 doubles), so the tile occupies 16 of the 32
/// registers and the depth loop is 2 loads + `NR` broadcasts + 16 FMAs.
///
/// # Safety
///
/// Caller must ensure `avx512f` is available and that `asl`/`bsl` are packed
/// slivers of the same depth (`asl.len() = kc·MR`, `bsl.len() = kc·NR`).
#[target_feature(enable = "avx512f")]
pub(crate) unsafe fn micro_f64(asl: &[f64], bsl: &[f64]) -> [[f64; MR]; NR] {
    let kc = asl.len() / MR;
    debug_assert_eq!(asl.len(), kc * MR);
    debug_assert_eq!(bsl.len(), kc * NR);
    let a = asl.as_ptr();
    let b = bsl.as_ptr();
    let mut lo = [_mm512_setzero_pd(); NR];
    let mut hi = [_mm512_setzero_pd(); NR];
    for p in 0..kc {
        let a0 = _mm512_loadu_pd(a.add(p * MR));
        let a1 = _mm512_loadu_pd(a.add(p * MR + 8));
        for j in 0..NR {
            let bj = _mm512_set1_pd(*b.add(p * NR + j));
            lo[j] = _mm512_fmadd_pd(a0, bj, lo[j]);
            hi[j] = _mm512_fmadd_pd(a1, bj, hi[j]);
        }
    }
    let mut acc = [[0.0; MR]; NR];
    for j in 0..NR {
        _mm512_storeu_pd(acc[j].as_mut_ptr(), lo[j]);
        _mm512_storeu_pd(acc[j].as_mut_ptr().add(8), hi[j]);
    }
    acc
}

/// f32 counterpart: one zmm holds a whole 16-float accumulator column.
///
/// # Safety
///
/// Same contract as [`micro_f64`].
#[target_feature(enable = "avx512f")]
pub(crate) unsafe fn micro_f32(asl: &[f32], bsl: &[f32]) -> [[f32; MR]; NR] {
    let kc = asl.len() / MR;
    debug_assert_eq!(asl.len(), kc * MR);
    debug_assert_eq!(bsl.len(), kc * NR);
    let a = asl.as_ptr();
    let b = bsl.as_ptr();
    let mut cols = [_mm512_setzero_ps(); NR];
    for p in 0..kc {
        let a0 = _mm512_loadu_ps(a.add(p * MR));
        for (j, col) in cols.iter_mut().enumerate() {
            let bj = _mm512_set1_ps(*b.add(p * NR + j));
            *col = _mm512_fmadd_ps(a0, bj, *col);
        }
    }
    let mut acc = [[0.0; MR]; NR];
    for j in 0..NR {
        _mm512_storeu_ps(acc[j].as_mut_ptr(), cols[j]);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::micro_tile_generic;

    fn slivers_f64(kc: usize) -> (Vec<f64>, Vec<f64>) {
        let mut s = 0x243F6A8885A308D3u64;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let a = (0..kc * MR).map(|_| next()).collect();
        let b = (0..kc * NR).map(|_| next()).collect();
        (a, b)
    }

    #[test]
    fn avx512_matches_generic_bitwise() {
        if !avx512_available() {
            return;
        }
        for kc in [1usize, 2, 7, 64, 200] {
            let (a, b) = slivers_f64(kc);
            let fast = unsafe { micro_f64(&a, &b) };
            let slow = micro_tile_generic(&a, &b);
            for j in 0..NR {
                for i in 0..MR {
                    assert_eq!(fast[j][i].to_bits(), slow[j][i].to_bits(), "kc={kc} ({i},{j})");
                }
            }
            let af: Vec<f32> = a.iter().map(|&x| x as f32).collect();
            let bf: Vec<f32> = b.iter().map(|&x| x as f32).collect();
            let fast = unsafe { micro_f32(&af, &bf) };
            let slow = micro_tile_generic(&af, &bf);
            for j in 0..NR {
                for i in 0..MR {
                    assert_eq!(fast[j][i].to_bits(), slow[j][i].to_bits(), "f32 kc={kc} ({i},{j})");
                }
            }
        }
    }
}
