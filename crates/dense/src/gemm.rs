//! General matrix-matrix multiply.
//!
//! `gemm` computes `C ← α·op(A)·op(B) + β·C` on column-major buffers with
//! explicit leading dimensions. All four transpose combinations route
//! through the packed register-tiled engine (`kernel.rs`) — the packing
//! stage absorbs the transposes, so there is a single optimised core.
//! Problems too small to amortise packing fall back to the seed loop nests
//! in [`crate::naive`].

use crate::kernel::{gemm_engine, PACK_MIN_MADDS};
use crate::pack::OpView;
use crate::Scalar;

/// Transpose selector for [`gemm`] operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

/// `C ← α·op(A)·op(B) + β·C`.
///
/// * `m, n` — dimensions of `C` (`m × n`, leading dimension `ldc`),
/// * `kk` — the contraction dimension,
/// * `op(A)` is `m × kk` (stored `lda`-strided), `op(B)` is `kk × n`.
///
/// # Panics
/// Panics (in debug builds) if a buffer is too small for its dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm<T: Scalar>(
    transa: Transpose,
    transb: Transpose,
    m: usize,
    n: usize,
    kk: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    debug_assert!(ldc >= m && c.len() >= (n - 1) * ldc + m);
    scale_cols(m, n, beta, c, ldc);
    if kk == 0 || alpha == T::ZERO {
        return;
    }
    match transa {
        Transpose::No => debug_assert!(lda >= m && a.len() >= (kk - 1) * lda + m),
        Transpose::Yes => debug_assert!(lda >= kk && a.len() >= (m - 1) * lda + kk),
    }
    match transb {
        Transpose::No => debug_assert!(ldb >= kk && b.len() >= (n - 1) * ldb + kk),
        Transpose::Yes => debug_assert!(ldb >= n && b.len() >= (kk - 1) * ldb + n),
    }
    // Degenerate shapes (dot/axpy-like) and tiny products can't amortise the
    // packing stage; everything else runs on the register-tiled engine.
    if m.min(n) < 2 || m * n * kk < PACK_MIN_MADDS {
        crate::naive::gemm_accum(transa, transb, m, n, kk, alpha, a, lda, b, ldb, c, ldc);
        return;
    }
    let av = OpView { data: a, ld: lda, trans: transa == Transpose::Yes };
    let bv = OpView { data: b, ld: ldb, trans: transb == Transpose::Yes };
    gemm_engine(m, n, kk, alpha, av, bv, c, ldc, None);
}

/// `C ← α·op(A)·B + β·C` for multi-right-hand-side solves, with a kernel
/// dispatch that is **independent of the RHS count**.
///
/// `op(A)` is `m × kk`, `B` is `kk × nrhs` (no transpose — it is a block of
/// right-hand sides), `C` is `m × nrhs`. Unlike [`gemm`], whose
/// naive-vs-packed dispatch looks at the total op count `m·n·kk` (so the
/// same per-column product can take different kernels — and produce
/// different bits — depending on how many columns ride along), this entry
/// decides on the **per-column** work `m·kk` alone. Combined with the fact
/// that both kernels accumulate each output column independently of its
/// neighbours, that gives the contract the solve path builds on:
///
/// > column `j` of the result is bitwise identical to the result of the
/// > same call with `nrhs = 1` on column `j` alone.
///
/// which is what makes a batched multi-RHS triangular solve bitwise equal
/// to a loop of single-RHS solves.
#[allow(clippy::too_many_arguments)]
pub fn gemm_multi_rhs<T: Scalar>(
    transa: Transpose,
    m: usize,
    nrhs: usize,
    kk: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    if m == 0 || nrhs == 0 {
        return;
    }
    debug_assert!(ldc >= m && c.len() >= (nrhs - 1) * ldc + m);
    scale_cols(m, nrhs, beta, c, ldc);
    if kk == 0 || alpha == T::ZERO {
        return;
    }
    match transa {
        Transpose::No => debug_assert!(lda >= m && a.len() >= (kk - 1) * lda + m),
        Transpose::Yes => debug_assert!(lda >= kk && a.len() >= (m - 1) * lda + kk),
    }
    debug_assert!(ldb >= kk && b.len() >= (nrhs - 1) * ldb + kk);
    if m * kk < PACK_MIN_MADDS {
        crate::naive::gemm_accum(transa, Transpose::No, m, nrhs, kk, alpha, a, lda, b, ldb, c, ldc);
        return;
    }
    let av = OpView { data: a, ld: lda, trans: transa == Transpose::Yes };
    let bv = OpView { data: b, ld: ldb, trans: false };
    gemm_engine(m, nrhs, kk, alpha, av, bv, c, ldc, None);
}

/// Convenience wrapper for the multifrontal hot path: `C ← C − A·Bᵀ` where
/// `A` is `m × kk` and `B` is `n × kk` (both column-major). This is the
/// `gemm` used by the overlapped GPU panel algorithm (Figure 9) to update the
/// rectangular part of the panel.
pub fn gemm_nt<T: Scalar>(
    m: usize,
    n: usize,
    kk: usize,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    gemm(Transpose::No, Transpose::Yes, m, n, kk, -T::ONE, a, lda, b, ldb, T::ONE, c, ldc);
}

#[inline(always)]
pub(crate) fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `C[.., 0..n] ← β·C` column by column. The `β` cases are distinguished
/// once out here, not per element: `β = 0` must overwrite (NaN-safe, BLAS
/// semantics), so it becomes a `fill`, and the general case is a clean
/// multiply loop.
pub(crate) fn scale_cols<T: Scalar>(m: usize, n: usize, beta: T, c: &mut [T], ldc: usize) {
    if beta == T::ONE {
        return;
    }
    if beta == T::ZERO {
        for j in 0..n {
            c[j * ldc..j * ldc + m].fill(T::ZERO);
        }
    } else {
        for j in 0..n {
            for v in &mut c[j * ldc..j * ldc + m] {
                *v *= beta;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::gemm_ref;
    use crate::DenseMat;

    fn mat(rows: usize, cols: usize, seed: u64) -> DenseMat<f64> {
        let mut s = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
        DenseMat::from_fn(rows, cols, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
    }

    fn check(transa: Transpose, transb: Transpose, m: usize, n: usize, kk: usize) {
        let (ar, ac) = if transa == Transpose::No { (m, kk) } else { (kk, m) };
        let (br, bc) = if transb == Transpose::No { (kk, n) } else { (n, kk) };
        let a = mat(ar, ac, 1);
        let b = mat(br, bc, 2);
        let c0 = mat(m, n, 3);

        let mut c = c0.clone();
        gemm(
            transa,
            transb,
            m,
            n,
            kk,
            0.75,
            a.as_slice(),
            ar,
            b.as_slice(),
            br,
            -0.25,
            c.as_mut_slice(),
            m,
        );
        let mut cref = c0.clone();
        gemm_ref(transa, transb, m, n, kk, 0.75, &a, &b, -0.25, &mut cref);
        assert!(c.max_abs_diff(&cref) < 1e-12, "{transa:?}/{transb:?} {m}x{n}x{kk}");
    }

    #[test]
    fn all_transpose_combinations_match_reference() {
        for &(m, n, kk) in &[(1, 1, 1), (3, 4, 5), (17, 9, 33), (64, 64, 64), (5, 1, 300)] {
            check(Transpose::No, Transpose::No, m, n, kk);
            check(Transpose::No, Transpose::Yes, m, n, kk);
            check(Transpose::Yes, Transpose::No, m, n, kk);
            check(Transpose::Yes, Transpose::Yes, m, n, kk);
        }
    }

    #[test]
    fn zero_k_only_scales_c() {
        let c0 = mat(4, 4, 9);
        let mut c = c0.clone();
        gemm(Transpose::No, Transpose::No, 4, 4, 0, 1.0, &[], 4, &[], 4, 2.0, c.as_mut_slice(), 4);
        for j in 0..4 {
            for i in 0..4 {
                assert_eq!(c[(i, j)], 2.0 * c0[(i, j)]);
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_nan_free() {
        // beta = 0 must overwrite even if C holds garbage (NaN), matching BLAS.
        let a = mat(2, 2, 4);
        let b = mat(2, 2, 5);
        let mut c = vec![f64::NAN; 4];
        gemm(
            Transpose::No,
            Transpose::No,
            2,
            2,
            2,
            1.0,
            a.as_slice(),
            2,
            b.as_slice(),
            2,
            0.0,
            &mut c,
            2,
        );
        assert!(c.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gemm_nt_subtracts_abt() {
        let a = mat(6, 3, 11);
        let b = mat(4, 3, 12);
        let c0 = mat(6, 4, 13);
        let mut c = c0.clone();
        gemm_nt(6, 4, 3, a.as_slice(), 6, b.as_slice(), 4, c.as_mut_slice(), 6);
        let expect = {
            let mut e = c0.clone();
            let abt = a.matmul(&b.transpose());
            for j in 0..4 {
                for i in 0..6 {
                    e[(i, j)] -= abt[(i, j)];
                }
            }
            e
        };
        assert!(c.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn respects_leading_dimension_submatrix() {
        // Multiply into a 2x2 sub-block of a 4x4 C with ldc = 4.
        let a = mat(2, 2, 21);
        let b = mat(2, 2, 22);
        let mut cfull = mat(4, 4, 23);
        let before = cfull.clone();
        gemm(
            Transpose::No,
            Transpose::No,
            2,
            2,
            2,
            1.0,
            a.as_slice(),
            2,
            b.as_slice(),
            2,
            1.0,
            &mut cfull.as_mut_slice()[0..],
            4,
        );
        // Rows 2..4 of each touched column must be untouched.
        for j in 0..2 {
            for i in 2..4 {
                assert_eq!(cfull[(i, j)], before[(i, j)]);
            }
        }
        // Columns 2..4 untouched entirely.
        for j in 2..4 {
            for i in 0..4 {
                assert_eq!(cfull[(i, j)], before[(i, j)]);
            }
        }
    }
}
