//! Symmetric rank-k update (lower triangle).
//!
//! `syrk` is the dominant kernel of the factor-update operation for fronts
//! with large update blocks (`m ≫ k`): it computes `U ← U − L₂·L₂ᵀ`
//! (Figure 1 of the paper). Only the lower triangle of `C` is referenced or
//! written.
//!
//! The bulk of the work runs on the packed gemm engine with `op(B) = Aᵀ`
//! and a lower-triangle write mask: tiles fully above the diagonal are
//! skipped before their flops happen, tiles straddling it are computed at
//! full register-tile width and stored masked, and tiles fully below use
//! the unmasked writeback.

use crate::kernel::{gemm_engine, PACK_MIN_MADDS};
use crate::pack::OpView;
use crate::Scalar;

/// Scale the lower triangle: `C[j.., j] ← β·C[j.., j]` for each column,
/// with the `β` cases hoisted out of the element loops (`β = 0` is a
/// NaN-safe overwrite, matching BLAS).
pub(crate) fn scale_lower<T: Scalar>(n: usize, beta: T, c: &mut [T], ldc: usize) {
    if beta == T::ONE {
        return;
    }
    if beta == T::ZERO {
        for j in 0..n {
            c[j * ldc + j..j * ldc + n].fill(T::ZERO);
        }
    } else {
        for j in 0..n {
            for v in &mut c[j * ldc + j..j * ldc + n] {
                *v *= beta;
            }
        }
    }
}

/// `C ← α·A·Aᵀ + β·C`, lower triangle only.
///
/// `C` is `n × n` (leading dimension `ldc`), `A` is `n × k` (leading
/// dimension `lda`). The strict upper triangle of `C` is neither read nor
/// written.
pub fn syrk_lower<T: Scalar>(
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    beta: T,
    c: &mut [T],
    ldc: usize,
) {
    if n == 0 {
        return;
    }
    debug_assert!(ldc >= n && c.len() >= (n - 1) * ldc + n);
    scale_lower(n, beta, c, ldc);
    if k == 0 || alpha == T::ZERO {
        return;
    }
    debug_assert!(lda >= n && a.len() >= (k - 1) * lda + n);
    // The triangle holds ~n²k/2 useful multiply-adds.
    if n < 2 || n * n * k / 2 < PACK_MIN_MADDS {
        crate::naive::syrk_accum(n, k, alpha, a, lda, c, ldc);
        return;
    }
    let av = OpView { data: a, ld: lda, trans: false };
    let bv = OpView { data: a, ld: lda, trans: true };
    gemm_engine(n, n, k, alpha, av, bv, c, ldc, Some(0));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::syrk_ref;
    use crate::DenseMat;

    fn mat(rows: usize, cols: usize, seed: u64) -> DenseMat<f64> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        DenseMat::from_fn(rows, cols, |_, _| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
    }

    #[test]
    fn matches_reference_various_shapes() {
        for &(n, k) in &[(1, 1), (4, 2), (7, 13), (33, 5), (64, 64), (10, 200)] {
            let a = mat(n, k, n as u64 * 31 + k as u64);
            let c0 = mat(n, n, 7);
            let mut c = c0.clone();
            syrk_lower(n, k, -1.0, a.as_slice(), n, 1.0, c.as_mut_slice(), n);
            let mut cref = c0.clone();
            syrk_ref(n, k, -1.0, &a, 1.0, &mut cref);
            // Compare lower triangles only.
            for j in 0..n {
                for i in j..n {
                    assert!((c[(i, j)] - cref[(i, j)]).abs() < 1e-12, "n={n} k={k} at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn upper_triangle_untouched() {
        let n = 8;
        let a = mat(n, 3, 5);
        let mut c = DenseMat::<f64>::from_fn(n, n, |_, _| 77.0);
        syrk_lower(n, 3, 1.0, a.as_slice(), n, 0.5, c.as_mut_slice(), n);
        for j in 1..n {
            for i in 0..j {
                assert_eq!(c[(i, j)], 77.0, "upper entry ({i},{j}) modified");
            }
        }
    }

    #[test]
    fn beta_zero_initializes() {
        let n = 5;
        let a = mat(n, 2, 6);
        let mut c = vec![f64::NAN; n * n];
        syrk_lower(n, 2, 1.0, a.as_slice(), n, 0.0, &mut c, n);
        for j in 0..n {
            for i in j..n {
                assert!(c[i + j * n].is_finite());
            }
        }
    }

    #[test]
    fn k_zero_scales_only() {
        let n = 4;
        let c0 = mat(n, n, 8);
        let mut c = c0.clone();
        syrk_lower(n, 0, 1.0, &[], n, 2.0, c.as_mut_slice(), n);
        for j in 0..n {
            for i in j..n {
                assert_eq!(c[(i, j)], 2.0 * c0[(i, j)]);
            }
        }
    }

    #[test]
    fn result_is_positive_semidefinite_diagonal() {
        // alpha=+1, beta=0 ⇒ C = A·Aᵀ which must have non-negative diagonal.
        let n = 12;
        let a = mat(n, 6, 10);
        let mut c = DenseMat::<f64>::zeros(n, n);
        syrk_lower(n, 6, 1.0, a.as_slice(), n, 0.0, c.as_mut_slice(), n);
        for i in 0..n {
            assert!(c[(i, i)] >= 0.0);
        }
    }
}
