//! Dense Cholesky factorization (lower).
//!
//! The blocked right-looking algorithm mirrors the structure the paper
//! assigns to each factor-update call: an unblocked `potrf` on the diagonal
//! block, a `trsm` on the panel below it, and a `syrk` trailing update —
//! exactly the decomposition that the GPU panel algorithm of Figure 9
//! performs with width `w` panels on the device.

use crate::syrk::syrk_lower;
use crate::trsm::trsm_right_lower_trans;
use crate::Scalar;

/// Failure of Cholesky factorization: a non-positive pivot was encountered,
/// meaning the matrix is not (numerically) positive definite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PotrfError {
    /// Zero-based column at which the non-positive pivot appeared.
    pub column: usize,
}

impl std::fmt::Display for PotrfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix not positive definite: non-positive pivot at column {}", self.column)
    }
}

impl std::error::Error for PotrfError {}

/// Default block size for the blocked algorithm.
pub const POTRF_BLOCK: usize = 64;

/// Unblocked lower Cholesky of the `n × n` leading block of `a` (leading
/// dimension `lda`). Only the lower triangle is referenced/written.
pub fn potrf_unblocked<T: Scalar>(n: usize, a: &mut [T], lda: usize) -> Result<(), PotrfError> {
    potrf_unblocked_offset(n, a, lda, 0)
}

pub(crate) fn potrf_unblocked_offset<T: Scalar>(
    n: usize,
    a: &mut [T],
    lda: usize,
    col_offset: usize,
) -> Result<(), PotrfError> {
    debug_assert!(n == 0 || (lda >= n && a.len() >= (n - 1) * lda + n));
    for j in 0..n {
        // d = a[j][j] − Σ_{l<j} L[j,l]²
        let mut d = a[j + j * lda];
        for l in 0..j {
            let v = a[j + l * lda];
            d -= v * v;
        }
        // `!(d > 0)` rather than `d <= 0`: NaN pivots must also fail.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(d > T::ZERO) || !d.is_finite() {
            return Err(PotrfError { column: col_offset + j });
        }
        let djj = d.sqrt();
        a[j + j * lda] = djj;
        let inv = T::ONE / djj;
        // Column below the pivot: L[i,j] = (a[i,j] − Σ_l L[i,l]·L[j,l]) / L[j,j]
        for l in 0..j {
            let ljl = a[j + l * lda];
            if ljl == T::ZERO {
                continue;
            }
            // Split so we can read column l while writing column j.
            let (left, right) = a.split_at_mut(j * lda);
            let src = &left[l * lda + j + 1..l * lda + n];
            let dst = &mut right[j + 1..n];
            for (dv, &sv) in dst.iter_mut().zip(src) {
                *dv -= ljl * sv;
            }
        }
        for v in &mut a[j * lda + j + 1..j * lda + n] {
            *v *= inv;
        }
    }
    Ok(())
}

/// Blocked lower Cholesky: factor the `n × n` leading block of `a`
/// (leading dimension `lda`) in place. On success the lower triangle holds
/// `L` with `A = L·Lᵀ`; the strict upper triangle is untouched.
pub fn potrf<T: Scalar>(n: usize, a: &mut [T], lda: usize) -> Result<(), PotrfError> {
    potrf_blocked(n, a, lda, POTRF_BLOCK)
}

/// Blocked Cholesky with an explicit block size (used by tests and by the
/// GPU panel algorithm which picks its own panel width `w`).
pub fn potrf_blocked<T: Scalar>(
    n: usize,
    a: &mut [T],
    lda: usize,
    nb: usize,
) -> Result<(), PotrfError> {
    potrf_blocked_offset(n, a, lda, nb, 0)
}

/// Unblocked fallback threshold: diagonal blocks at or below this order are
/// factored by the scalar routine; larger ones recurse so their own trailing
/// updates run as (small) `trsm`/`syrk` calls instead of scalar column ops.
const POTRF_UNBLOCKED_MAX: usize = 16;

fn potrf_blocked_offset<T: Scalar>(
    n: usize,
    a: &mut [T],
    lda: usize,
    nb: usize,
    col_offset: usize,
) -> Result<(), PotrfError> {
    assert!(nb > 0, "block size must be positive");
    if n == 0 {
        return Ok(());
    }
    debug_assert!(lda >= n && a.len() >= (n - 1) * lda + n);
    let mut diag_scratch = vec![T::ZERO; nb.min(n) * nb.min(n)];
    let mut j = 0;
    while j < n {
        let jb = nb.min(n - j);
        let rest = n - j - jb;
        // Diagonal block factorization: recurse with a quarter block while
        // the block is big enough to profit, scalar loops below that.
        {
            let diag = &mut a[j * lda + j..];
            if jb > POTRF_UNBLOCKED_MAX && nb > POTRF_UNBLOCKED_MAX {
                potrf_blocked_offset(
                    jb,
                    diag,
                    lda,
                    (nb / 4).max(POTRF_UNBLOCKED_MAX),
                    col_offset + j,
                )?;
            } else {
                potrf_unblocked_offset(jb, diag, lda, col_offset + j)?;
            }
        }
        if rest > 0 {
            // Panel solve: A[j+jb.., j..j+jb] · L_diagᵀ⁻¹. The diagonal block
            // and the panel interleave within the same columns, so copy the
            // (small) factored diagonal block to scratch for aliasing-free
            // access.
            for c in 0..jb {
                for r in c..jb {
                    diag_scratch[r + c * jb] = a[(j + r) + (j + c) * lda];
                }
            }
            let below = &mut a[j * lda + j + jb..];
            trsm_right_lower_trans(rest, jb, &diag_scratch, jb, below, lda);
            // Trailing update: A[j+jb.., j+jb..] −= panel · panelᵀ.
            let (panel_cols, trailing) = a.split_at_mut((j + jb) * lda);
            let panel = &panel_cols[j * lda + j + jb..];
            let c = &mut trailing[j + jb..];
            syrk_lower(rest, jb, -T::ONE, panel, lda, T::ONE, c, lda);
        }
        j += jb;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{random_spd, DenseMat};
    use crate::reference::potrf_ref;

    #[test]
    fn matches_reference_and_reconstructs() {
        for &n in &[1usize, 2, 3, 5, 16, 33, 64, 65, 130, 200] {
            let a0 = random_spd::<f64>(n, n as u64);
            let mut a = a0.clone();
            potrf(n, a.as_mut_slice(), n).unwrap();
            a.zero_upper();

            let mut aref = a0.clone();
            potrf_ref(&mut aref).unwrap();
            aref.zero_upper();
            assert!(a.max_abs_diff(&aref) < 1e-9 * n as f64, "n={n} vs reference");

            // L·Lᵀ must reconstruct the (symmetrized) input.
            let mut sym = a0.clone();
            sym.symmetrize_from_lower();
            let recon = a.matmul(&a.transpose());
            assert!(recon.max_abs_diff(&sym) < 1e-8 * n as f64, "n={n} reconstruction");
        }
    }

    #[test]
    fn block_size_invariance() {
        let n = 97;
        let a0 = random_spd::<f64>(n, 7);
        let mut a1 = a0.clone();
        let mut a2 = a0.clone();
        let mut a3 = a0.clone();
        potrf_blocked(n, a1.as_mut_slice(), n, 1).unwrap();
        potrf_blocked(n, a2.as_mut_slice(), n, 8).unwrap();
        potrf_blocked(n, a3.as_mut_slice(), n, 1024).unwrap();
        a1.zero_upper();
        a2.zero_upper();
        a3.zero_upper();
        assert!(a1.max_abs_diff(&a2) < 1e-10);
        assert!(a1.max_abs_diff(&a3) < 1e-10);
    }

    #[test]
    fn detects_indefinite_matrix_with_column() {
        // Make entry (3,3) impossible to factor.
        let n = 6;
        let mut a = random_spd::<f64>(n, 9);
        a[(3, 3)] = -100.0;
        let err = potrf(n, a.as_mut_slice(), n).unwrap_err();
        assert_eq!(err.column, 3);
    }

    #[test]
    fn detects_zero_matrix() {
        let mut a = DenseMat::<f64>::zeros(4, 4);
        let err = potrf(4, a.as_mut_slice(), 4).unwrap_err();
        assert_eq!(err.column, 0);
    }

    #[test]
    fn single_precision_factorization() {
        let n = 50;
        let a0 = random_spd::<f32>(n, 3);
        let mut a = a0.clone();
        potrf(n, a.as_mut_slice(), n).unwrap();
        a.zero_upper();
        let mut sym = a0.clone();
        sym.symmetrize_from_lower();
        let recon = a.matmul(&a.transpose());
        // f32 tolerance: scaled by norm.
        let tol = 1e-4 * sym.frob_norm();
        assert!(recon.max_abs_diff(&sym) < tol);
    }

    #[test]
    fn empty_matrix_ok() {
        let mut a: Vec<f64> = vec![];
        assert!(potrf(0, &mut a, 1).is_ok());
    }

    #[test]
    fn error_display() {
        let e = PotrfError { column: 5 };
        assert!(e.to_string().contains("column 5"));
    }
}
