//! Tile-granular kernel entry points for the intra-front task DAG.
//!
//! The multifrontal tiled driver decomposes one large frontal matrix into
//! `potrf(k)` → `trsm(i,k)` → `syrk/gemm(i,j,k)` tile tasks executed
//! concurrently by the work-stealing runtime. Each task calls exactly one
//! of the wrappers below on a tile-sized operand. Two contracts make that
//! safe and deterministic, and both are tested here rather than assumed:
//!
//! * **Dims-only dispatch.** Every naive-vs-packed decision below depends
//!   only on the operand dimensions — never on values, the thread count, or
//!   any global state — so a tile task produces the same bits whether it
//!   runs serially in the canonical loop-nest order or on a stolen deque
//!   slot. (`syrk`'s dispatch looks at `n·n·k/2`, `gemm`'s at `m·n·k`,
//!   `trsm`'s at its block width, `potrf`'s at its fixed recursion — all
//!   functions of the tile shape the symbolic plan fixed up front.)
//! * **No shared packing state.** The engine's packing arena
//!   ([`crate::arena`]) is thread-local, so concurrent tile tasks on
//!   different workers never alias a staging panel; a task packs, computes
//!   and unpacks entirely within its own thread's scratch.
//!
//! Leading dimensions are explicit everywhere, so the same entry points
//! serve both strided sub-views of a front (`ld = s`) and packed per-task
//! staging tiles (`ld = tile rows`) — and, because leading dimensions only
//! affect addressing (accumulation order per element is fixed by the
//! engine's `pc`/depth loops), the two produce bitwise-identical results.

use crate::gemm::gemm_nt;
use crate::potrf::{potrf, PotrfError};
use crate::syrk::syrk_lower;
use crate::trsm::trsm_right_lower_trans;
use crate::Scalar;

/// Factor an `n × n` diagonal tile in place: `A = L·Lᵀ` (lower triangle
/// referenced/written; the strictly-upper part is neither read nor
/// modified). Uses the same fixed blocking as the monolithic
/// [`potrf`](crate::potrf::potrf), so a tile factor is independent of where
/// the tile sits in its front.
pub fn tile_potrf<T: Scalar>(n: usize, a: &mut [T], lda: usize) -> Result<(), PotrfError> {
    potrf(n, a, lda)
}

/// Solve one off-diagonal tile row-block against a factored diagonal tile:
/// `B ← B · L⁻ᵀ` where `L` is the `n × n` lower-triangular diagonal tile
/// (`ldl`-strided) and `B` is `m × n` (`ldb`-strided).
pub fn tile_trsm<T: Scalar>(m: usize, n: usize, l: &[T], ldl: usize, b: &mut [T], ldb: usize) {
    trsm_right_lower_trans(m, n, l, ldl, b, ldb);
}

/// Rank-`k` symmetric update of one diagonal tile of the trailing block:
/// `C ← C − A·Aᵀ` with `A` `n × k` and only the lower triangle of the
/// `n × n` `C` read or written (the strictly-upper part may hold garbage).
pub fn tile_syrk<T: Scalar>(n: usize, k: usize, a: &[T], lda: usize, c: &mut [T], ldc: usize) {
    syrk_lower(n, k, -T::ONE, a, lda, T::ONE, c, ldc);
}

/// Rank-`k` update of one off-diagonal tile of the trailing block:
/// `C ← C − A·Bᵀ` with `A` `m × k`, `B` `n × k`, `C` `m × n` (full block
/// written).
#[allow(clippy::too_many_arguments)]
pub fn tile_gemm_nt<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    gemm_nt(m, n, k, a, lda, b, ldb, c, ldc);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
            })
            .collect()
    }

    /// An SPD tile: random + diagonal dominance.
    fn spd(n: usize, seed: u64) -> Vec<f64> {
        let mut a = vals(n * n, seed);
        for i in 0..n {
            a[i + i * n] += n as f64;
        }
        a
    }

    /// Pack a `rows × cols` block out of an `ld`-strided buffer.
    fn pack(src: &[f64], ld: usize, r0: usize, c0: usize, rows: usize, cols: usize) -> Vec<f64> {
        let mut out = vec![0.0; rows * cols];
        for j in 0..cols {
            out[j * rows..(j + 1) * rows]
                .copy_from_slice(&src[(c0 + j) * ld + r0..(c0 + j) * ld + r0 + rows]);
        }
        out
    }

    #[test]
    fn strided_and_packed_views_agree_bitwise() {
        // The determinism contract of the tiled front body: running a tile
        // kernel on an `ld = s` sub-view of the front and on a packed copy
        // of the same tile must produce identical bits.
        let (s, r0, c0, rows, k) = (37, 9, 3, 17, 6);
        let big = vals(s * s, 7);
        let a_tile = pack(&big, s, r0, c0, rows, k);
        let b_tile = pack(&big, s, r0 + rows, c0, 11, k);

        // syrk: strided C inside a larger buffer vs packed C.
        let mut c_str = vals(s * s, 8);
        let c_packed0 = pack(&c_str, s, r0, r0, rows, rows);
        let mut c_pk = c_packed0.clone();
        tile_syrk(rows, k, &big[c0 * s + r0..], s, &mut c_str[r0 * s + r0..], s);
        tile_syrk(rows, k, &a_tile, rows, &mut c_pk, rows);
        for j in 0..rows {
            for i in j..rows {
                assert_eq!(
                    c_str[(r0 + j) * s + r0 + i].to_bits(),
                    c_pk[j * rows + i].to_bits(),
                    "syrk ld-dependence at ({i},{j})"
                );
            }
        }

        // gemm: full tile, strided operands vs packed operands.
        let mut g_str = vals(s * s, 9);
        let g_packed0 = pack(&g_str, s, r0, c0, rows, 11);
        let mut g_pk = g_packed0.clone();
        tile_gemm_nt(
            rows,
            11,
            k,
            &big[c0 * s + r0..],
            s,
            &big[c0 * s + r0 + rows..],
            s,
            &mut g_str[c0 * s + r0..],
            s,
        );
        tile_gemm_nt(rows, 11, k, &a_tile, rows, &b_tile, 11, &mut g_pk, rows);
        for j in 0..11 {
            for i in 0..rows {
                assert_eq!(
                    g_str[(c0 + j) * s + r0 + i].to_bits(),
                    g_pk[j * rows + i].to_bits(),
                    "gemm ld-dependence at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn potrf_trsm_tiles_match_monolithic_blocks() {
        // A 2×2 tile split of a blocked Cholesky step must agree with
        // direct kernel calls on the same data (numerically — the tiled
        // schedule is a *different* but valid elimination order).
        let n = 24;
        let w = 10; // ragged split: 10 + 14
        let mut a = spd(n, 11);
        let full = {
            let mut f = a.clone();
            potrf(n, &mut f, n).unwrap();
            f
        };
        // Tile algorithm: potrf(0), trsm(1,0), syrk(1,0), potrf(1).
        tile_potrf(w, &mut a, n).unwrap();
        let l00 = pack(&a, n, 0, 0, w, w);
        tile_trsm(n - w, w, &l00, w, &mut a[w..], n);
        let l10 = pack(&a, n, w, 0, n - w, w);
        tile_syrk(n - w, w, &l10, n - w, &mut a[w * n + w..], n);
        tile_potrf(n - w, &mut a[w * n + w..], n).unwrap();
        for j in 0..n {
            for i in j..n {
                let d = (a[j * n + i] - full[j * n + i]).abs();
                assert!(d < 1e-12, "tiled vs monolithic at ({i},{j}): {d}");
            }
        }
    }

    #[test]
    fn concurrent_tile_tasks_do_not_interfere() {
        // Eight threads each run the same syrk+gemm tile pair into their own
        // output; every result must be bitwise identical to a serial run —
        // the thread-local packing arena guarantees no cross-task aliasing.
        let (n, k) = (48, 33);
        let a = vals(n * k, 21);
        let b = vals(n * k, 22);
        let c0 = vals(n * n, 23);
        let serial = {
            let mut c = c0.clone();
            tile_syrk(n, k, &a, n, &mut c, n);
            tile_gemm_nt(n, n, k, &a, n, &b, n, &mut c, n);
            c
        };
        let results: Vec<Vec<f64>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    s.spawn(|| {
                        let mut c = c0.clone();
                        tile_syrk(n, k, &a, n, &mut c, n);
                        tile_gemm_nt(n, n, k, &a, n, &b, n, &mut c, n);
                        c
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (t, r) in results.iter().enumerate() {
            assert!(
                serial.iter().zip(r).all(|(x, y)| x.to_bits() == y.to_bits()),
                "thread {t} diverged"
            );
        }
    }

    #[test]
    fn syrk_tile_ignores_garbage_upper() {
        // The tiled executor stages diagonal tiles with an unwritten
        // strictly-upper half; the masked engine path must neither read nor
        // write it.
        let (n, k) = (40, 16);
        let a = vals(n * k, 31);
        let mut c_clean = vals(n * n, 32);
        let mut c_dirty = c_clean.clone();
        for j in 0..n {
            for i in 0..j {
                c_dirty[j * n + i] = f64::NAN;
            }
        }
        tile_syrk(n, k, &a, n, &mut c_clean, n);
        tile_syrk(n, k, &a, n, &mut c_dirty, n);
        for j in 0..n {
            for i in j..n {
                assert_eq!(c_clean[j * n + i].to_bits(), c_dirty[j * n + i].to_bits());
            }
            for i in 0..j {
                assert!(c_dirty[j * n + i].is_nan(), "upper ({i},{j}) was touched");
            }
        }
    }
}
