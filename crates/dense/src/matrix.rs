//! Column-major dense matrix storage.
//!
//! Kernels in this crate follow the BLAS convention: they take raw
//! `(dim…, slice, leading-dimension)` arguments so a kernel can operate on a
//! sub-block of a larger frontal matrix without copying. [`DenseMat`] is the
//! owned convenience wrapper used by tests, examples and the factor storage.

use crate::Scalar;

/// Marker for the storage order used throughout the crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColMajor;

/// An owned, column-major dense matrix with `ld == rows`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMat<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> DenseMat<T> {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMat { rows, cols, data: vec![T::ZERO; rows * cols] }
    }

    /// Build from a closure `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Build from column-major data (`data.len() == rows * cols`).
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        DenseMat { rows, cols, data }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |i, j| if i == j { T::ONE } else { T::ZERO })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension (equals `rows` for owned matrices).
    pub fn ld(&self) -> usize {
        self.rows
    }

    /// Raw column-major data.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw column-major data.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// The transpose, as a new owned matrix.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// `self · other` via the reference product (test helper).
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut c = Self::zeros(self.rows, other.cols);
        for j in 0..other.cols {
            for l in 0..self.cols {
                let b = other[(l, j)];
                for i in 0..self.rows {
                    let add = self[(i, l)] * b;
                    c[(i, j)] += add;
                }
            }
        }
        c
    }

    /// Mirror the strict lower triangle into the upper triangle (in place),
    /// making a lower-stored symmetric matrix explicitly symmetric.
    pub fn symmetrize_from_lower(&mut self) {
        assert_eq!(self.rows, self.cols);
        for j in 0..self.cols {
            for i in (j + 1)..self.rows {
                let v = self[(i, j)];
                self[(j, i)] = v;
            }
        }
    }

    /// Zero the strict upper triangle (in place) — useful for comparing
    /// lower-triangular results where the upper part is unspecified.
    pub fn zero_upper(&mut self) {
        assert_eq!(self.rows, self.cols);
        for j in 1..self.cols {
            for i in 0..j.min(self.rows) {
                self[(i, j)] = T::ZERO;
            }
        }
    }

    /// Max absolute element-wise difference against `other`.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn frob_norm(&self) -> f64 {
        self.data.iter().map(|v| v.to_f64() * v.to_f64()).sum::<f64>().sqrt()
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for DenseMat<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i + j * self.rows]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for DenseMat<T> {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i + j * self.rows]
    }
}

/// A random symmetric positive definite matrix of order `n`, built as
/// `B·Bᵀ + n·I` from uniformly random `B` — used by tests and benches.
pub fn random_spd<T: Scalar>(n: usize, seed: u64) -> DenseMat<T> {
    // Small xorshift so the crate stays dependency-free; quality is ample
    // for generating test matrices.
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // Map to [-1, 1).
        (state >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    };
    let b = DenseMat::<T>::from_fn(n, n, |_, _| T::from_f64(next()));
    let mut a = b.matmul(&b.transpose());
    for i in 0..n {
        a[(i, i)] += T::from_f64(n as f64);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_col_major_layout() {
        let m = DenseMat::<f64>::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        // Column 0 first, then column 1.
        assert_eq!(m.as_slice(), &[0.0, 10.0, 20.0, 1.0, 11.0, 21.0]);
        assert_eq!(m[(2, 1)], 21.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = DenseMat::<f32>::from_fn(4, 3, |i, j| (i + 7 * j) as f32);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 3)], m[(3, 2)]);
    }

    #[test]
    fn matmul_identity() {
        let m = DenseMat::<f64>::from_fn(5, 5, |i, j| (i * j + 1) as f64);
        let i5 = DenseMat::<f64>::identity(5);
        assert_eq!(m.matmul(&i5), m);
        assert_eq!(i5.matmul(&m), m);
    }

    #[test]
    fn symmetrize_and_zero_upper() {
        let mut m =
            DenseMat::<f64>::from_fn(3, 3, |i, j| if i >= j { (i + j) as f64 } else { 99.0 });
        m.symmetrize_from_lower();
        assert_eq!(m[(0, 2)], m[(2, 0)]);
        m.zero_upper();
        assert_eq!(m[(0, 2)], 0.0);
        assert_eq!(m[(2, 0)], 2.0);
    }

    #[test]
    fn random_spd_is_symmetric_and_pd_diagonal() {
        let a = random_spd::<f64>(8, 42);
        for i in 0..8 {
            assert!(a[(i, i)] > 0.0);
            for j in 0..8 {
                assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn frob_norm_known() {
        let m = DenseMat::<f64>::from_fn(2, 2, |_, _| 2.0);
        assert!((m.frob_norm() - 4.0).abs() < 1e-12);
    }
}
