//! Thread-local packing scratch.
//!
//! Every macro-kernel invocation needs two aligned staging panels (packed A
//! and packed B). Allocating them per call would dominate small problems, so
//! each thread keeps one growable buffer that persists across calls — the
//! same idea as the paper's reusable pinned-buffer pool (§V-A2), minus the
//! pinning. The buffer is `u64`-backed so a single arena serves both `f32`
//! and `f64` panels (alignment 8 ≥ alignment of every [`Scalar`]).

use crate::Scalar;
use std::cell::RefCell;

thread_local! {
    static SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Words needed to hold `len` elements of `T`.
fn words_for<T: Scalar>(len: usize) -> usize {
    (len * T::BYTES).div_ceil(8)
}

/// Run `f` with two disjoint uninitialised scratch panels of `len_a` and
/// `len_b` elements. The panels come from this thread's persistent arena;
/// callers must fully write any region they later read (the pack routines
/// do — they zero-pad partial slivers explicitly).
pub(crate) fn with_pack_buffers<T: Scalar, R>(
    len_a: usize,
    len_b: usize,
    f: impl FnOnce(&mut [T], &mut [T]) -> R,
) -> R {
    SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        let wa = words_for::<T>(len_a);
        let need = wa + words_for::<T>(len_b);
        if buf.len() < need {
            buf.resize(need, 0);
        }
        let (wa_slice, wb_slice) = buf.split_at_mut(wa);
        // SAFETY: u64 storage is 8-byte aligned, which satisfies f32/f64
        // alignment; lengths were sized above so both casts stay in bounds;
        // the two slices are disjoint.
        let pa =
            unsafe { std::slice::from_raw_parts_mut(wa_slice.as_mut_ptr().cast::<T>(), len_a) };
        let pb =
            unsafe { std::slice::from_raw_parts_mut(wb_slice.as_mut_ptr().cast::<T>(), len_b) };
        f(pa, pb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_disjoint_and_sized() {
        with_pack_buffers::<f64, _>(100, 50, |a, b| {
            assert_eq!(a.len(), 100);
            assert_eq!(b.len(), 50);
            a.fill(1.0);
            b.fill(2.0);
            assert!(a.iter().all(|&v| v == 1.0));
            assert!(b.iter().all(|&v| v == 2.0));
        });
    }

    #[test]
    fn arena_reuses_and_grows() {
        with_pack_buffers::<f32, _>(8, 8, |a, b| {
            a.fill(1.0);
            b.fill(1.0);
        });
        // A larger request after a smaller one must still be in bounds.
        with_pack_buffers::<f64, _>(1000, 2000, |a, b| {
            a.fill(3.0);
            b.fill(4.0);
            assert_eq!(a.len(), 1000);
            assert_eq!(b.len(), 2000);
        });
    }
}
