//! # mf-dense — dense kernels for the multifrontal solver
//!
//! From-scratch, dependency-free implementations of the four dense kernels
//! that dominate sparse multifrontal Cholesky factorization (Figure 1 of the
//! paper):
//!
//! * [`potrf`] — dense Cholesky factorization `A = L·Lᵀ` (lower),
//! * [`trsm_right_lower_trans`] — the panel solve `X·Lᵀ = B`,
//! * [`syrk_lower`] — the symmetric rank-k update `C ← C − A·Aᵀ` (lower),
//! * [`gemm`] — general matrix multiply (used by the GPU panel algorithm and
//!   the solve phase).
//!
//! All kernels are generic over [`Scalar`] (`f32`/`f64`) and operate on
//! column-major buffers with an explicit leading dimension, mirroring the
//! BLAS calling convention so the same code paths serve host fronts and the
//! simulated device.
//!
//! All four route their bulk through one packed, register-tiled kernel
//! engine (`pack.rs` + `kernel.rs`): three-level cache blocking
//! (`MC × KC × NC`), contiguous panel packing that absorbs the transpose
//! combinations, and an `MR × NR` micro-kernel whose explicit accumulator
//! array autovectorizes to FMA chains for both scalar types. The engine can
//! multithread over disjoint column slabs of `C` ([`set_num_threads`]);
//! results are bitwise identical for every thread count (see `kernel.rs`).
//! The seed loop-nest kernels survive in [`naive`] as the small-size path
//! and the in-build benchmark baseline. *Measured* speed never feeds the
//! paper's experiments (simulated time does; see `mf-gpusim`).

// The kernels take BLAS-style argument lists (dims, alpha, a, lda, …);
// bundling them into structs would hide the convention the paper and every
// BLAS binding use.
#![allow(clippy::too_many_arguments)]

pub mod matrix;
pub mod naive;
pub mod scalar;

mod arena;
mod gemm;
mod kernel;
mod pack;
mod potrf;
mod reference;
mod simd;
mod syrk;
mod tile;
mod trsm;

pub use gemm::{gemm, gemm_multi_rhs, gemm_nt, Transpose};
pub use kernel::{num_threads, set_num_threads, thread_cap};
pub use matrix::{ColMajor, DenseMat};
pub use potrf::{potrf, potrf_blocked, potrf_unblocked, PotrfError};
pub use reference::{gemm_ref, potrf_ref, syrk_ref, trsm_ref};
pub use scalar::Scalar;
pub use syrk::syrk_lower;
pub use tile::{tile_gemm_nt, tile_potrf, tile_syrk, tile_trsm};
pub use trsm::{
    trsm_left_lower_notrans, trsm_left_lower_notrans_multi, trsm_left_lower_trans,
    trsm_left_lower_trans_multi, trsm_right_lower_trans,
};

/// Floating point operation counts for the three F-U kernels, following the
/// asymptotic expressions used in the paper (Section IV-B):
/// `N_P = k³/3`, `N_T = m·k²`, `N_S = m²·k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuFlops {
    /// Dense Cholesky (`potrf`) flops: `k³/3`.
    pub potrf: f64,
    /// Triangular solve (`trsm`) flops: `m·k²`.
    pub trsm: f64,
    /// Symmetric rank-k update (`syrk`) flops: `m²·k`.
    pub syrk: f64,
}

impl FuFlops {
    /// Operation counts for a factor-update step with pivot-block size `k`
    /// and update-matrix size `m`.
    pub fn new(m: usize, k: usize) -> Self {
        let (m, k) = (m as f64, k as f64);
        FuFlops { potrf: k * k * k / 3.0, trsm: m * k * k, syrk: m * m * k }
    }

    /// Total flops `N_P + N_T + N_S` — the x-axis of Figures 10 and 11 and
    /// the quantity thresholded by the baseline hybrid policy.
    pub fn total(&self) -> f64 {
        self.potrf + self.trsm + self.syrk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fu_flops_formulas() {
        let f = FuFlops::new(10, 4);
        assert_eq!(f.potrf, 64.0 / 3.0);
        assert_eq!(f.trsm, 160.0);
        assert_eq!(f.syrk, 400.0);
        assert!((f.total() - (64.0 / 3.0 + 160.0 + 400.0)).abs() < 1e-12);
    }

    #[test]
    fn fu_flops_zero_update() {
        // Root supernodes have m = 0: only the potrf term remains.
        let f = FuFlops::new(0, 100);
        assert_eq!(f.trsm, 0.0);
        assert_eq!(f.syrk, 0.0);
        assert!(f.potrf > 0.0);
    }
}
