//! Multi-worker scaling: reproduce the paper's closing experiment — the
//! task-parallel factorization on several CPU threads and on CPU+GPU
//! workers (the "2 CPU threads + 2 GPUs" configuration of Table VII) —
//! via the deterministic list-schedule simulation.
//!
//! ```sh
//! cargo run --release --example multi_gpu
//! ```

use gpu_multifrontal::core::{
    factor_permuted, simulate_tree_schedule, FactorOptions, MoldableModel, PolicyKind,
    PolicySelector,
};
use gpu_multifrontal::dense::FuFlops;
use gpu_multifrontal::matgen::{laplacian_3d, Stencil};
use gpu_multifrontal::prelude::*;
use gpu_multifrontal::sparse::symbolic::analyze;
use gpu_multifrontal::sparse::AmalgamationOptions;

fn main() {
    let a = laplacian_3d(24, 24, 24, Stencil::Full);
    println!("matrix: N = {}", a.order());
    let analysis =
        analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()));
    let a32: SymCsc<f32> = analysis.permuted.0.cast();

    // Per-supernode durations for CPU-only (P1) and for GPU workers
    // (copy-optimized P4-heavy hybrid — the configuration the paper found
    // best for multi-GPU runs).
    let run = |selector: PolicySelector, copy_opt: bool| {
        let mut machine = Machine::paper_node();
        let opts = FactorOptions {
            selector,
            copy_optimized: copy_opt,
            record_stats: true,
            ..Default::default()
        };
        factor_permuted(&a32, &analysis.symbolic, &analysis.perm, &mut machine, &opts)
            .expect("SPD")
            .1
    };
    let cpu_stats = run(PolicySelector::Fixed(PolicyKind::P1), false);
    let gpu_stats = run(PolicySelector::Baseline(BaselineThresholds::default()), true);

    let nsn = analysis.symbolic.num_supernodes();
    let by_sn = |st: &gpu_multifrontal::core::FactorStats| {
        let mut d = vec![0.0; nsn];
        let mut o = vec![0.0; nsn];
        for rec in &st.records {
            d[rec.sn] = rec.total;
            o[rec.sn] = FuFlops::new(rec.m, rec.k).total();
        }
        (d, o)
    };
    let (d_cpu, o_cpu) = by_sn(&cpu_stats);
    let (d_gpu, o_gpu) = by_sn(&gpu_stats);
    let t_serial: f64 = d_cpu.iter().sum();

    println!("\nCPU-only workers (task-parallel + intra-front BLAS model):");
    for w in [1usize, 2, 4, 8] {
        let r = simulate_tree_schedule(
            &analysis.symbolic,
            &d_cpu,
            &o_cpu,
            w,
            Some(MoldableModel::default()),
        );
        println!(
            "  {w} thread(s): {:.3} ms  — {:.2}× vs serial, {:.0} % utilization",
            r.makespan * 1e3,
            t_serial / r.makespan,
            100.0 * r.utilization()
        );
    }

    println!("\nCPU+GPU workers (hybrid policy per front, copy-optimized):");
    for w in [1usize, 2, 4] {
        let r = simulate_tree_schedule(
            &analysis.symbolic,
            &d_gpu,
            &o_gpu,
            w,
            Some(MoldableModel::default()),
        );
        println!(
            "  {w} thread(s) + {w} GPU(s): {:.3} ms — {:.2}× vs serial CPU",
            r.makespan * 1e3,
            t_serial / r.makespan
        );
    }
    println!("\n(the paper reports 10–25× for 2 threads + 2 GPUs on its 1M-row suite)");
    println!("OK");
}
