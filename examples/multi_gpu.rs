//! Multi-worker scaling: reproduce the paper's closing experiment — the
//! task-parallel factorization on several CPU threads and on CPU+GPU
//! workers (the "2 CPU threads + 2 GPUs" configuration of Table VII) — and
//! then go past it: first the deterministic list-schedule *simulation* the
//! paper's estimate style implies (hardware-independent makespans of the
//! paper's node), then the **real multi-GPU driver** — proportional
//! subtree mapping, peer-copy extend-add, cross-device look-ahead
//! (DESIGN.md §4.13) — on 1/2/4/8 simulated devices, and finally the
//! work-stealing runtime *measuring* wall-clock seconds on this host. The
//! sections are labelled distinctly; measured numbers agree with simulated
//! ones only insofar as the host has hardware threads to spend.
//!
//! ```sh
//! cargo run --release --example multi_gpu
//! ```

use gpu_multifrontal::core::{
    durations_by_supernode, factor_permuted, factor_permuted_parallel, simulate_tree_schedule,
    FactorOptions, MoldableModel, MultiGpuOptions, ParallelOptions, PolicyKind, PolicySelector,
};
use gpu_multifrontal::matgen::{laplacian_3d, Stencil};
use gpu_multifrontal::prelude::*;
use gpu_multifrontal::sparse::symbolic::analyze;
use gpu_multifrontal::sparse::AmalgamationOptions;

fn main() {
    let a = laplacian_3d(24, 24, 24, Stencil::Full);
    println!("matrix: N = {}", a.order());
    let analysis =
        analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default())).unwrap();
    let a32: SymCsc<f32> = analysis.permuted.0.cast();

    // Per-supernode durations for CPU-only (P1) and for GPU workers
    // (copy-optimized P4-heavy hybrid — the configuration the paper found
    // best for multi-GPU runs).
    let run = |selector: PolicySelector, copy_opt: bool| {
        let mut machine = Machine::paper_node();
        let opts = FactorOptions {
            selector,
            copy_optimized: copy_opt,
            record_stats: true,
            ..Default::default()
        };
        factor_permuted(&a32, &analysis.symbolic, &analysis.perm, &mut machine, &opts)
            .expect("SPD")
            .1
    };
    let cpu_stats = run(PolicySelector::Fixed(PolicyKind::P1), false);
    let gpu_stats = run(PolicySelector::Baseline(BaselineThresholds::default()), true);

    let (d_cpu, o_cpu) = durations_by_supernode(&analysis.symbolic, &cpu_stats);
    let (d_gpu, o_gpu) = durations_by_supernode(&analysis.symbolic, &gpu_stats);
    let t_serial: f64 = d_cpu.iter().sum();

    println!("\n== SIMULATED makespans (list-schedule model of the paper's node) ==");
    println!("\nCPU-only workers (task-parallel + intra-front BLAS model):");
    for w in [1usize, 2, 4, 8] {
        let r = simulate_tree_schedule(
            &analysis.symbolic,
            &d_cpu,
            &o_cpu,
            w,
            Some(MoldableModel::default()),
        );
        println!(
            "  {w} thread(s): {:.3} ms  — {:.2}× vs serial, {:.0} % utilization",
            r.makespan * 1e3,
            t_serial / r.makespan,
            100.0 * r.utilization()
        );
    }

    println!("\nCPU+GPU workers (hybrid policy per front, copy-optimized):");
    for w in [1usize, 2, 4] {
        let r = simulate_tree_schedule(
            &analysis.symbolic,
            &d_gpu,
            &o_gpu,
            w,
            Some(MoldableModel::default()),
        );
        println!(
            "  {w} thread(s) + {w} GPU(s): {:.3} ms — {:.2}× vs serial CPU",
            r.makespan * 1e3,
            t_serial / r.makespan
        );
    }
    println!("\n(the paper reports 10–25× for 2 threads + 2 GPUs on its 1M-row suite)");

    // Pipelined GPU dispatch: event-chained downloads, look-ahead uploads
    // and batched small fronts replace the per-front device drain. Same
    // bits, shorter simulated makespan — and the run now reports how busy
    // each simulated GPU engine actually was.
    println!("\n== PIPELINED GPU dispatch vs drain-per-front (fixed P4, simulated) ==\n");
    let gpu_line = |label: &str, st: &gpu_multifrontal::core::FactorStats| {
        let g = st.gpu.as_ref().expect("paper node has a GPU");
        println!(
            "  {label}: {:.3} ms makespan — GPU compute {:.0} % / copy {:.0} % busy \
             ({:.0} % compute idle)",
            st.total_time * 1e3,
            100.0 * g.compute_utilization(),
            100.0 * g.copy_utilization(),
            100.0 * g.compute_idle_fraction(),
        );
    };
    let drain_p4 = run(PolicySelector::Fixed(PolicyKind::P4), false);
    let mut piped_machine = Machine::paper_node();
    let piped_opts = FactorOptions {
        selector: PolicySelector::Fixed(PolicyKind::P4),
        pipeline: PipelineOptions::pipelined(),
        ..Default::default()
    };
    let (_, piped_p4) =
        factor_permuted(&a32, &analysis.symbolic, &analysis.perm, &mut piped_machine, &piped_opts)
            .expect("SPD");
    gpu_line("drain-per-front", &drain_p4);
    gpu_line("pipelined      ", &piped_p4);
    println!(
        "  pipelining gains {:.2}× with a bitwise-identical factor",
        drain_p4.total_time / piped_p4.total_time
    );

    // The real multi-GPU driver: the machine's device becomes device 0 of a
    // uniform simulated device set; whole subtrees map to devices in
    // proportion to their work (Geist–Ng), child updates crossing the
    // device frontier travel over peer links instead of bouncing through
    // the host, and look-ahead spans the whole set. Bits never change.
    println!("\n== MULTI-GPU driver (fixed P4, simulated device set) ==\n");
    let ref_bits: Vec<u32> = {
        let mut machine = Machine::paper_node();
        let opts =
            FactorOptions { selector: PolicySelector::Fixed(PolicyKind::P4), ..Default::default() };
        let (f, _) = factor_permuted(&a32, &analysis.symbolic, &analysis.perm, &mut machine, &opts)
            .expect("SPD");
        f.slab.iter().map(|x| x.to_bits()).collect()
    };
    let mut base_1gpu = 0.0f64;
    for d in [1usize, 2, 4, 8] {
        let mut machine = Machine::paper_node();
        let opts = FactorOptions {
            selector: PolicySelector::Fixed(PolicyKind::P4),
            pipeline: PipelineOptions::pipelined(),
            devices: MultiGpuOptions::devices(d),
            ..Default::default()
        };
        let (f, st) =
            factor_permuted(&a32, &analysis.symbolic, &analysis.perm, &mut machine, &opts)
                .expect("SPD");
        assert!(
            f.slab.iter().map(|x| x.to_bits()).eq(ref_bits.iter().copied()),
            "multi-GPU factor must match the drain driver bitwise"
        );
        if d == 1 {
            base_1gpu = st.total_time;
        }
        let busy = st
            .gpu_devices
            .iter()
            .map(|u| format!("{:.0}%", 100.0 * u.busy_fraction()))
            .collect::<Vec<_>>()
            .join(" ");
        println!(
            "  {d} device(s): {:8.3} ms — {:.2}× vs 1 GPU, peer traffic {:7.1} KiB{}",
            st.total_time * 1e3,
            base_1gpu / st.total_time,
            st.peer_bytes as f64 / 1024.0,
            if busy.is_empty() { String::new() } else { format!(", device busy [{busy}]") },
        );
    }
    println!("  (every device count reproduced the drain driver's factor bit for bit)");

    // Now run the real thing: the same baseline-hybrid factorization on the
    // mf-runtime work-stealing scheduler, measured in elapsed seconds on
    // this host. The factor is bitwise identical to the serial run at every
    // worker count; only the wall-clock changes, and only as far as the
    // host's hardware threads allow.
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("\n== MEASURED wall-clock (work-stealing runtime, {threads} hardware thread(s)) ==\n");
    let opts = FactorOptions {
        selector: PolicySelector::Baseline(BaselineThresholds::default()),
        copy_optimized: true,
        ..Default::default()
    };
    let mut serial_machine = Machine::paper_node();
    let (_, serial_stats) =
        factor_permuted(&a32, &analysis.symbolic, &analysis.perm, &mut serial_machine, &opts)
            .expect("SPD");
    println!("  serial driver: {:.1} ms elapsed", serial_stats.wall_time * 1e3);
    for w in [1usize, 2, 4] {
        let mut machines: Vec<Machine> = (0..w).map(|_| Machine::paper_node()).collect();
        let (_, st) = factor_permuted_parallel(
            &a32,
            &analysis.symbolic,
            &analysis.perm,
            &mut machines,
            &opts,
            &ParallelOptions::default(),
        )
        .expect("SPD");
        println!(
            "  {w} worker(s):   {:.1} ms elapsed — {:.2}× vs serial (measured, host-bound)",
            st.wall_time * 1e3,
            serial_stats.wall_time / st.wall_time
        );
    }
    println!("OK");
}
