//! Auto-tuning deep dive: gather per-policy timing data across several
//! matrices, train the cost-sensitive classifier (paper Eq. 3) and a plain
//! cross-entropy comparator, and print the learned policy map over the
//! (m, k) plane — a textual rendition of the paper's Figure 12.
//!
//! ```sh
//! cargo run --release --example policy_tuning
//! ```

use gpu_multifrontal::autotune::{train, Dataset, Objective, TrainOptions};
use gpu_multifrontal::core::{
    estimate_fu_time, factor_permuted, FactorOptions, PolicyKind, PolicySelector,
};
use gpu_multifrontal::matgen::{laplacian_3d, Stencil};
use gpu_multifrontal::prelude::*;
use gpu_multifrontal::sparse::symbolic::analyze;
use gpu_multifrontal::sparse::AmalgamationOptions;

fn main() {
    // Training data: per-supernode timings from two 3-D problems.
    let mut sets = Vec::new();
    for (nx, ny, nz) in [(16, 16, 16), (22, 18, 12)] {
        let a = laplacian_3d(nx, ny, nz, Stencil::Full);
        let analysis =
            analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default()))
                .unwrap();
        let a32: SymCsc<f32> = analysis.permuted.0.cast();
        let mut stats = Vec::new();
        for p in PolicyKind::ALL {
            let mut machine = Machine::paper_node();
            let opts = FactorOptions {
                selector: PolicySelector::Fixed(p),
                record_stats: true,
                ..Default::default()
            };
            let (_, st) =
                factor_permuted(&a32, &analysis.symbolic, &analysis.perm, &mut machine, &opts)
                    .expect("SPD");
            stats.push(st);
        }
        sets.push(Dataset::from_policy_runs(&[&stats[0], &stats[1], &stats[2], &stats[3]]));
    }
    let data = Dataset::merge(sets);
    println!("dataset: {} factor-update calls", data.len());

    let (tr, te) = data.split(0.8, 7);
    let ec = train(&tr, &TrainOptions::default());
    let ce = train(&tr, &TrainOptions { objective: Objective::CrossEntropy, ..Default::default() });

    let t_ideal = te.ideal_time();
    let t_ec = te.predictor_time(|m, k| ec.predict(m, k));
    let t_ce = te.predictor_time(|m, k| ce.predict(m, k));
    println!("held-out expected time:");
    println!("  ideal hybrid       {:.3} ms", t_ideal * 1e3);
    println!(
        "  expected-cost model {:.3} ms ({:+.2} % vs ideal)",
        t_ec * 1e3,
        100.0 * (t_ec / t_ideal - 1.0)
    );
    println!(
        "  cross-entropy model {:.3} ms ({:+.2} % vs ideal)",
        t_ce * 1e3,
        100.0 * (t_ce / t_ideal - 1.0)
    );

    // Learned policy map vs the simulator's ideal map (Figure 12 analogue).
    println!("\nlearned policy map (m →, k ↑; digits = chosen policy):");
    let mut machine = Machine::paper_node();
    let cells = 16usize;
    let cell = 1000 / cells;
    for row_k in (0..cells).rev() {
        let k = row_k * cell + cell / 2;
        let mut model_row = String::new();
        let mut ideal_row = String::new();
        for col_m in 0..cells {
            let m = col_m * cell + cell / 2;
            model_row.push(char::from(b'1' + ec.predict(m, k).index() as u8));
            let best =
                PolicyKind::ALL
                    .iter()
                    .min_by(|&&a, &&b| {
                        estimate_fu_time(&mut machine, m, k, a, 64, false)
                            .total_cmp(&estimate_fu_time(&mut machine, m, k, b, 64, false))
                    })
                    .unwrap();
            ideal_row.push(char::from(b'1' + best.index() as u8));
        }
        println!("k≈{k:>4}  model {model_row}   ideal {ideal_row}");
    }
    println!("\nOK");
}
