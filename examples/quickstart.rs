//! Quickstart: factor and solve a 3-D Poisson system with the hybrid
//! CPU/GPU multifrontal solver, recovering double-precision accuracy from a
//! single-precision factorization via iterative refinement.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gpu_multifrontal::matgen::{laplacian_3d, rhs_for_solution, Stencil};
use gpu_multifrontal::prelude::*;

fn main() {
    // A 20×20×20 7-point Laplacian: N = 8000.
    let a = laplacian_3d(20, 20, 20, Stencil::Faces);
    println!("matrix: N = {}, lower NNZ = {}", a.order(), a.nnz_lower());

    // The paper's experimental node: one Xeon 5160 core + one Tesla T10
    // (simulated — numerics are real, time is modelled).
    let mut machine = Machine::paper_node();

    // Factor in f32 with the op-count baseline hybrid policy.
    let opts = SolverOptions {
        factor: FactorOptions {
            selector: PolicySelector::Baseline(BaselineThresholds::default()),
            record_stats: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let solver = SpdSolver::new(&a, &mut machine, &opts).expect("SPD matrix must factor");
    println!(
        "factored: {} supernodal nnz, {:.3} ms simulated on Xeon 5160 + Tesla T10",
        solver.factor_nnz(),
        solver.factor_time() * 1e3,
    );
    let counts = solver.stats().policy_counts();
    println!(
        "policy usage: P1 ×{}, P2 ×{}, P3 ×{}, P4 ×{}",
        counts[0], counts[1], counts[2], counts[3]
    );

    // Solve with a known solution and refine to double precision.
    let (xtrue, b) = rhs_for_solution(&a, 42);
    let sol = solver.solve_refined(&b, 4, 1e-13).unwrap();
    let err = sol.x.iter().zip(&xtrue).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    println!("refinement history (relative residual): {:?}", sol.residual_history);
    println!(
        "forward error vs known solution: {err:.3e} after {} refinement steps",
        sol.iterations
    );
    assert!(err < 1e-7, "refinement must recover double-precision-grade accuracy");
    println!("OK");
}
