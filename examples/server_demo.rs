//! Solver-as-a-service walkthrough: multiple tenants share one `Server`,
//! same-pattern submissions reuse cached symbolic analyses, concurrent
//! callers get their RHS batched into shared sweeps (bitwise identical to
//! serial answers), and misbehaving traffic gets typed rejections instead
//! of panics or unbounded queues.
//!
//! ```sh
//! cargo run --release --example server_demo
//! ```

use std::sync::Arc;

use gpu_multifrontal::core::{Precision, SolverOptions, SpdSolver};
use gpu_multifrontal::gpusim::Machine;
use gpu_multifrontal::matgen::{laplacian_3d, Stencil};
use gpu_multifrontal::server::{ServeError, Server, ServerConfig};
use gpu_multifrontal::sparse::SymCsc;

fn scaled(a: &SymCsc<f64>, k: f64) -> SymCsc<f64> {
    SymCsc::from_parts(
        a.order(),
        a.colptr().to_vec(),
        a.rowind().to_vec(),
        a.values().iter().map(|v| v * k).collect(),
    )
}

fn rhs(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = (i as u64 ^ seed).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed) >> 33;
            (x as f64 / (1u64 << 31) as f64) - 0.5
        })
        .collect()
}

fn main() {
    let opts = SolverOptions { precision: Precision::F64, ..Default::default() };
    let server = Arc::new(Server::start(ServerConfig {
        solver: opts.clone(),
        workers: 2,
        max_batch_rhs: 32,
        analysis_cache_entries: 8,
        ..Default::default()
    }));

    // --- Pattern-keyed analysis caching -----------------------------------
    // Three tenants submit systems with the same sparsity pattern but
    // different values (think: the same mesh, different material fields).
    // Only the first pays for the symbolic phase.
    let a = laplacian_3d(12, 12, 8, Stencil::Faces);
    let n = a.order();
    println!("matrix: N = {n}, lower NNZ = {}", a.nnz_lower());

    let s1 = server.submit("alice", &a).expect("SPD");
    let s2 = server.submit("bob", &scaled(&a, 2.0)).expect("SPD");
    let s3 = server.submit("carol", &scaled(&a, 0.5)).expect("SPD");
    let st = server.stats();
    println!(
        "3 submissions: {} symbolic analyses computed, {} served from the pattern cache",
        st.analysis_misses, st.analysis_hits
    );

    // --- Cross-request RHS batching ---------------------------------------
    // Eight concurrent callers fire requests at alice's session; the worker
    // pool aggregates whatever is pending into blocked sweeps. Answers are
    // bitwise identical to a standalone serial solve, batched or not.
    let reference = {
        let mut machine = Machine::paper_node();
        let solver = SpdSolver::new(&a, &mut machine, &opts).expect("SPD");
        move |seed: u64| solver.solve_many(&rhs(n, seed), 1).expect("well-formed")
    };
    std::thread::scope(|scope| {
        for caller in 0..8u64 {
            let server = server.clone();
            let reference = &reference;
            scope.spawn(move || {
                for req in 0..6u64 {
                    let seed = caller * 100 + req;
                    let x = server.solve(s1, rhs(n, seed)).expect("accepted");
                    let want = reference(seed);
                    assert!(
                        x.iter().zip(&want).all(|(p, q)| p.to_bits() == q.to_bits()),
                        "batched response must be bitwise identical to the serial answer"
                    );
                }
            });
        }
    });
    let st = server.stats();
    println!(
        "48 requests from 8 callers served in {} sweeps (widest batch: {} RHS), \
         all bitwise identical to serial",
        st.batches, st.max_batch_rhs
    );

    // --- Same-pattern refactor (numeric-only re-factorization) ------------
    // Bob's time step: new values, same pattern. FIFO ordering per session
    // means requests before the refactor see old values, after see new.
    server.resubmit(s2, scaled(&a, 3.0)).expect("same pattern");
    let x = server.solve(s2, rhs(n, 7)).expect("accepted");
    println!("refactor + solve OK (|x[0]| = {:.3e})", x[0].abs());

    // --- Typed rejections --------------------------------------------------
    match server.solve(s3, vec![1.0; n + 5]) {
        Err(ServeError::Invalid(e)) => println!("malformed request rejected: {e}"),
        other => panic!("expected a typed rejection, got {other:?}"),
    }
    server.close(s3);
    match server.solve(s3, rhs(n, 1)) {
        Err(ServeError::SessionClosed) => println!("closed session rejected: session closed"),
        other => panic!("expected SessionClosed, got {other:?}"),
    }

    let st = server.stats();
    println!(
        "final stats: {} sessions live, {} bytes resident, {} refactors, {} invalid rejected",
        st.active_sessions, st.resident_bytes, st.refactors, st.rejected_invalid
    );
    println!("OK");
}
