//! A structural-analysis style workload: a 3-DOF vector elasticity operator
//! on a 3-D mesh (the kind of matrix the paper's suite comes from), factored
//! under each fixed policy and the model-based hybrid, comparing simulated
//! times — a miniature of the paper's Table VII workflow.
//!
//! ```sh
//! cargo run --release --example structural_analysis
//! ```

use gpu_multifrontal::autotune::{train, Dataset, TrainOptions};
use gpu_multifrontal::core::{factor_permuted, FactorOptions, PolicyKind, PolicySelector};
use gpu_multifrontal::matgen::{elasticity_3d, rhs_ones};
use gpu_multifrontal::prelude::*;
use gpu_multifrontal::sparse::symbolic::analyze;
use gpu_multifrontal::sparse::AmalgamationOptions;

fn main() {
    // 14×14×14 nodes × 3 DOF = 8232 unknowns, ~80 nnz/row like audikw_1.
    let a = elasticity_3d(14, 14, 14);
    println!(
        "elasticity model: N = {}, nnz/row ≈ {:.0}",
        a.order(),
        a.nnz_full() as f64 / a.order() as f64
    );

    let analysis =
        analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default())).unwrap();
    println!(
        "analysis: {} supernodes, factor nnz = {}, {:.2e} flops",
        analysis.symbolic.num_supernodes(),
        analysis.symbolic.factor_nnz(),
        analysis.symbolic.total_flops()
    );
    let a32: SymCsc<f32> = analysis.permuted.0.cast();

    // Factor under each fixed policy, recording per-call timings.
    let mut stats = Vec::new();
    for p in PolicyKind::ALL {
        let mut machine = Machine::paper_node();
        let opts = FactorOptions {
            selector: PolicySelector::Fixed(p),
            record_stats: true,
            ..Default::default()
        };
        let (_, st) =
            factor_permuted(&a32, &analysis.symbolic, &analysis.perm, &mut machine, &opts)
                .expect("SPD");
        println!("  {p}: {:.3} ms simulated", st.total_time * 1e3);
        stats.push(st);
    }
    let t_serial = stats[0].total_time;

    // Train the cost-sensitive model on the observed timings (paper Eq. 3)
    // and run the model-based hybrid.
    let dataset = Dataset::from_policy_runs(&[&stats[0], &stats[1], &stats[2], &stats[3]]);
    let model = train(&dataset, &TrainOptions::default());
    let mut machine = Machine::paper_node();
    let opts = FactorOptions {
        selector: PolicySelector::Model(model),
        record_stats: true,
        ..Default::default()
    };
    let (factor, st) =
        factor_permuted(&a32, &analysis.symbolic, &analysis.perm, &mut machine, &opts)
            .expect("SPD");
    println!(
        "  model hybrid: {:.3} ms — {:.2}× over serial (ideal-hybrid bound {:.2}×)",
        st.total_time * 1e3,
        t_serial / st.total_time,
        t_serial / dataset.ideal_time().min(t_serial)
    );

    // And it still solves correctly.
    let b = rhs_ones(&a);
    let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
    let x = factor.solve(&b32);
    let xerr = x.iter().map(|&v| (v as f64 - 1.0).abs()).fold(0.0f64, f64::max);
    println!("solve check: max |x − 1| = {xerr:.2e} (single precision, unrefined)");
    assert!(xerr < 1e-2);
    println!("OK");
}
