//! Determinism guarantees of the wall-clock parallel driver.
//!
//! `factor_permuted_parallel` must produce a factor **bitwise identical** to
//! the serial `factor_permuted` at every worker count, for every precision,
//! every policy mix, and every thread-budget setting — the parallel runtime
//! reorders *when* supernodes run, never *what* they compute or in which
//! order child updates are extend-added. These tests pin that contract, and
//! a stress test drives many independent parallel factorizations
//! concurrently to shake out any hidden shared state.

use gpu_multifrontal::core::{
    factor_permuted, factor_permuted_parallel, CholeskyFactor, FactorError, FrontStorage,
    ParallelOptions,
};
use gpu_multifrontal::dense::Scalar;
use gpu_multifrontal::matgen::{elasticity_3d, laplacian_2d, laplacian_3d, Stencil};
use gpu_multifrontal::prelude::*;
use gpu_multifrontal::sparse::symbolic::{analyze, SymbolicFactor};
use gpu_multifrontal::sparse::{AmalgamationOptions, Permutation};

fn analysis_of(a: &SymCsc<f64>) -> gpu_multifrontal::sparse::symbolic::Analysis {
    analyze(a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default())).unwrap()
}

fn baseline_opts() -> FactorOptions {
    FactorOptions {
        selector: PolicySelector::Baseline(BaselineThresholds::default()),
        record_stats: true,
        ..Default::default()
    }
}

/// Every factor entry as `f64` bits (exact for both `f32` and `f64`). The
/// factor is one contiguous slab, so the whole comparison is a single pass.
fn panel_bits<T: Scalar>(f: &CholeskyFactor<T>) -> Vec<u64> {
    f.slab.iter().map(|&x| x.to_f64().to_bits()).collect()
}

/// Factor serially, then at each worker count, and require bit equality.
fn assert_bitwise_deterministic<T: Scalar>(
    a: &SymCsc<T>,
    symbolic: &SymbolicFactor,
    perm: &Permutation,
    opts: &FactorOptions,
) {
    let mut serial_machine = Machine::paper_node();
    let (fs, ss) = factor_permuted(a, symbolic, perm, &mut serial_machine, opts).unwrap();
    let reference = panel_bits(&fs);
    for workers in [1usize, 2, 4, 8] {
        let mut machines: Vec<Machine> = (0..workers).map(|_| Machine::paper_node()).collect();
        let par = ParallelOptions { thread_budget: 4 };
        let (fp, sp) =
            factor_permuted_parallel(a, symbolic, perm, &mut machines, opts, &par).unwrap();
        assert_eq!(
            reference,
            panel_bits(&fp),
            "{workers}-worker factor must be bitwise identical to serial"
        );
        // Stats come back in postorder, one record per supernode, and count
        // the same OOM fallbacks the serial traversal hit.
        let sns: Vec<usize> = sp.records.iter().map(|r| r.sn).collect();
        assert_eq!(sns, symbolic.postorder, "records must be merged into postorder");
        assert_eq!(sp.oom_fallbacks, ss.oom_fallbacks);
    }
}

#[test]
fn bitwise_identical_f64_all_families() {
    for a in [
        laplacian_2d(20, 17, Stencil::Faces),
        laplacian_3d(8, 7, 6, Stencil::Faces),
        elasticity_3d(4, 4, 3),
    ] {
        let an = analysis_of(&a);
        assert_bitwise_deterministic(&an.permuted.0, &an.symbolic, &an.perm, &baseline_opts());
    }
}

#[test]
fn bitwise_identical_f32_gpu_policies() {
    // f32 runs exercise the GPU policies (P2–P4) under the baseline
    // selector — staging buffers, simulated device state, pinned pools.
    for a in [
        laplacian_2d(18, 15, Stencil::Faces),
        laplacian_3d(7, 7, 7, Stencil::Faces),
        elasticity_3d(4, 3, 3),
    ] {
        let an = analysis_of(&a);
        let a32: SymCsc<f32> = an.permuted.0.cast();
        assert_bitwise_deterministic(&a32, &an.symbolic, &an.perm, &baseline_opts());
        for p in [PolicyKind::P2, PolicyKind::P4] {
            let opts = FactorOptions { selector: PolicySelector::Fixed(p), ..baseline_opts() };
            assert_bitwise_deterministic(&a32, &an.symbolic, &an.perm, &opts);
        }
    }
}

/// The arena storage backend (LIFO stack serially, pooled hand-off buffers
/// in parallel) and the per-front heap reference backend must agree bit for
/// bit at every worker count — the backend changes where the numbers live,
/// never the numbers. Also pins the arena's memory contract: peak working
/// storage within the symbolic bound and an O(1) allocation count.
fn assert_storage_backends_agree<T: Scalar>(
    a: &SymCsc<T>,
    symbolic: &SymbolicFactor,
    perm: &Permutation,
) {
    let arena_opts = baseline_opts();
    let heap_opts = FactorOptions { front_storage: FrontStorage::Heap, ..baseline_opts() };
    let mut m0 = Machine::paper_node();
    let (fa, sa) = factor_permuted(a, symbolic, perm, &mut m0, &arena_opts).unwrap();
    let reference = panel_bits(&fa);
    assert!(
        sa.peak_front_bytes <= symbolic.update_stack_peak() * T::BYTES,
        "arena high-water {} exceeds symbolic bound {}",
        sa.peak_front_bytes,
        symbolic.update_stack_peak() * T::BYTES
    );
    assert_eq!(sa.front_alloc_events, 2, "serial arena must allocate only slab + arena");
    let mut m1 = Machine::paper_node();
    let (fh, sh) = factor_permuted(a, symbolic, perm, &mut m1, &heap_opts).unwrap();
    assert_eq!(reference, panel_bits(&fh), "serial heap storage diverged from arena");
    assert!(sh.front_alloc_events > sa.front_alloc_events);
    for workers in [1usize, 2, 4, 8] {
        for (name, opts) in [("arena", &arena_opts), ("heap", &heap_opts)] {
            let mut machines: Vec<Machine> = (0..workers).map(|_| Machine::paper_node()).collect();
            let (fp, sp) = factor_permuted_parallel(
                a,
                symbolic,
                perm,
                &mut machines,
                opts,
                &ParallelOptions { thread_budget: 2 },
            )
            .unwrap();
            assert_eq!(
                reference,
                panel_bits(&fp),
                "{workers}-worker {name} storage diverged from serial arena factor"
            );
            assert!(sp.front_alloc_events > 0);
        }
    }
}

#[test]
fn storage_backends_bitwise_agree_f64() {
    for a in [laplacian_2d(16, 13, Stencil::Faces), laplacian_3d(6, 6, 5, Stencil::Faces)] {
        let an = analysis_of(&a);
        assert_storage_backends_agree(&an.permuted.0, &an.symbolic, &an.perm);
    }
}

#[test]
fn storage_backends_bitwise_agree_f32() {
    for a in [laplacian_2d(16, 13, Stencil::Faces), elasticity_3d(4, 3, 3)] {
        let an = analysis_of(&a);
        let a32: SymCsc<f32> = an.permuted.0.cast();
        assert_storage_backends_agree(&a32, &an.symbolic, &an.perm);
    }
}

/// Intra-front tiled task expansion: with the tile size and expansion
/// threshold lowered so the test families' root fronts really split into
/// `potrf`/`trsm`/`syrk`/`gemm` tile tasks, the parallel driver schedules
/// those tiles across workers — and the factor must still be bitwise
/// identical to the serial driver at every worker count, because the tiled
/// loop nest is the *same* canonical numeric schedule serially and in
/// parallel (the DAG only reorders independent tiles; every output tile has
/// exactly one writer per round and the update reduction order over `k` is
/// fixed). Checked for both storage backends, which must also agree with
/// each other.
fn tiled_opts(storage: FrontStorage) -> FactorOptions {
    FactorOptions {
        selector: PolicySelector::Fixed(PolicyKind::P1),
        tiling: TilingOptions { enabled: true, tile: 8, min_front: 24 },
        front_storage: storage,
        record_stats: true,
        ..Default::default()
    }
}

fn assert_tiled_bitwise<T: Scalar>(a: &SymCsc<T>, symbolic: &SymbolicFactor, perm: &Permutation) {
    use gpu_multifrontal::core::TaskKind;
    let mut cross_storage: Option<Vec<u64>> = None;
    for (sname, storage) in [("arena", FrontStorage::Arena), ("heap", FrontStorage::Heap)] {
        let opts = tiled_opts(storage);
        let mut serial_machine = Machine::paper_node();
        let (fs, _) = factor_permuted(a, symbolic, perm, &mut serial_machine, &opts).unwrap();
        let reference = panel_bits(&fs);
        match &cross_storage {
            None => cross_storage = Some(reference.clone()),
            Some(r) => assert_eq!(r, &reference, "storage backend changed the tiled factor"),
        }
        for workers in [1usize, 2, 4, 8] {
            let mut machines: Vec<Machine> = (0..workers).map(|_| Machine::paper_node()).collect();
            let (fp, sp) = factor_permuted_parallel(
                a,
                symbolic,
                perm,
                &mut machines,
                &opts,
                &ParallelOptions { thread_budget: 4 },
            )
            .unwrap();
            assert_eq!(
                reference,
                panel_bits(&fp),
                "{workers}-worker {sname} tiled factor must be bitwise identical to serial"
            );
            // The thresholds above must actually expand fronts, otherwise
            // this suite silently degenerates into the untiled one.
            assert!(
                sp.tasks.iter().any(|t| t.kind == TaskKind::Potrf),
                "no front expanded into tile tasks ({sname}, w={workers})"
            );
        }
    }
}

#[test]
fn tiled_expansion_bitwise_identical_f64_all_families() {
    for a in [
        laplacian_2d(20, 17, Stencil::Faces),
        laplacian_3d(8, 7, 6, Stencil::Faces),
        elasticity_3d(4, 4, 3),
    ] {
        let an = analysis_of(&a);
        assert_tiled_bitwise(&an.permuted.0, &an.symbolic, &an.perm);
    }
}

#[test]
fn tiled_expansion_bitwise_identical_f32_all_families() {
    for a in [
        laplacian_2d(20, 17, Stencil::Faces),
        laplacian_3d(8, 7, 6, Stencil::Faces),
        elasticity_3d(4, 4, 3),
    ] {
        let an = analysis_of(&a);
        let a32: SymCsc<f32> = an.permuted.0.cast();
        assert_tiled_bitwise(&a32, &an.symbolic, &an.perm);
    }
}

#[test]
fn thread_budget_never_changes_bits() {
    // The nested-parallelism arbitration only picks kernel widths; the
    // dense engine is bitwise deterministic at any width, so any budget
    // must give the same factor.
    let a = laplacian_3d(7, 6, 8, Stencil::Faces);
    let an = analysis_of(&a);
    let opts = baseline_opts();
    let mut reference: Option<Vec<u64>> = None;
    for budget in [1usize, 2, 8] {
        let mut machines: Vec<Machine> = (0..3).map(|_| Machine::paper_node()).collect();
        let (f, _) = factor_permuted_parallel(
            &an.permuted.0,
            &an.symbolic,
            &an.perm,
            &mut machines,
            &opts,
            &ParallelOptions { thread_budget: budget },
        )
        .unwrap();
        let bits = panel_bits(&f);
        match &reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(r, &bits, "thread_budget={budget} changed the factor"),
        }
    }
}

#[test]
fn parallel_error_is_serial_first_error() {
    // An indefinite matrix must report the same (first-in-postorder) pivot
    // failure at every worker count, even though another worker may hit a
    // later failure concurrently.
    let mut t = Triplet::new(40);
    for i in 0..40 {
        // Two negative pivots; natural ordering keeps columns in place.
        t.push(i, i, if i == 13 || i == 29 { -3.0 } else { 4.0 });
        if i + 1 < 40 {
            t.push(i + 1, i, -1.0);
        }
    }
    let a = t.assemble();
    let an = analyze(&a, OrderingKind::Natural, None).unwrap();
    let mut serial_machine = Machine::paper_node();
    let serial_err = factor_permuted(
        &an.permuted.0,
        &an.symbolic,
        &an.perm,
        &mut serial_machine,
        &FactorOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(serial_err, FactorError::NotPositiveDefinite { .. }));
    for workers in [1usize, 2, 4] {
        let mut machines: Vec<Machine> = (0..workers).map(|_| Machine::paper_node()).collect();
        let err = factor_permuted_parallel(
            &an.permuted.0,
            &an.symbolic,
            &an.perm,
            &mut machines,
            &FactorOptions::default(),
            &ParallelOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, serial_err, "{workers}-worker run must surface the serial error");
    }
}

/// Pipelined dispatch (event-chained staging, look-ahead uploads, batched
/// small-front runs) must not change a single bit relative to the
/// drain-per-front driver: the pipeline reorders *when* device work is
/// issued and when the host waits, never the numeric op content or order.
fn assert_pipelined_bitwise_drain<T: Scalar>(
    a: &SymCsc<T>,
    symbolic: &SymbolicFactor,
    perm: &Permutation,
) {
    use gpu_multifrontal::core::PipelineOptions;
    for policy in [PolicyKind::P2, PolicyKind::P3, PolicyKind::P4] {
        let drain =
            FactorOptions { selector: PolicySelector::Fixed(policy), ..FactorOptions::default() };
        let piped = FactorOptions { pipeline: PipelineOptions::pipelined(), ..drain.clone() };
        let mut m0 = Machine::paper_node();
        let (fd, sd) = factor_permuted(a, symbolic, perm, &mut m0, &drain).unwrap();
        let reference = panel_bits(&fd);
        let mut m1 = Machine::paper_node();
        let (fp, sp) = factor_permuted(a, symbolic, perm, &mut m1, &piped).unwrap();
        assert_eq!(
            reference,
            panel_bits(&fp),
            "serial pipelined {policy:?} diverged from drain driver"
        );
        assert_eq!(sp.oom_fallbacks, sd.oom_fallbacks, "{policy:?} OOM decisions must match");
        for workers in [1usize, 2, 4, 8] {
            let mut machines: Vec<Machine> = (0..workers).map(|_| Machine::paper_node()).collect();
            let (fw, _) = factor_permuted_parallel(
                a,
                symbolic,
                perm,
                &mut machines,
                &piped,
                &ParallelOptions { thread_budget: 2 },
            )
            .unwrap();
            assert_eq!(
                reference,
                panel_bits(&fw),
                "{workers}-worker pipelined {policy:?} diverged from serial drain"
            );
        }
    }
}

#[test]
fn pipelined_bitwise_identical_f32() {
    for a in [laplacian_3d(6, 6, 5, Stencil::Faces), elasticity_3d(4, 3, 3)] {
        let an = analysis_of(&a);
        let a32: SymCsc<f32> = an.permuted.0.cast();
        assert_pipelined_bitwise_drain(&a32, &an.symbolic, &an.perm);
    }
}

#[test]
fn pipelined_bitwise_identical_f64() {
    for a in [laplacian_2d(16, 13, Stencil::Faces), laplacian_3d(6, 6, 5, Stencil::Faces)] {
        let an = analysis_of(&a);
        assert_pipelined_bitwise_drain(&an.permuted.0, &an.symbolic, &an.perm);
    }
}

// ---------------------------------------------------------------------------
// Multi-GPU determinism: the multi-device driver (proportional subtree
// mapping, peer-copy extend-add, cross-device look-ahead) reorders when
// fronts run and where their contribution blocks travel — never the numeric
// op content or the extend-add order — so factor slabs must be bitwise
// identical to the serial drain driver at every (workers × devices)
// combination. (The `multigpu_` prefix is load-bearing: ci.sh gates on
// these tests by name at both default and single-threaded test settings.)
// ---------------------------------------------------------------------------

fn assert_multigpu_bitwise<T: Scalar>(
    a: &SymCsc<T>,
    symbolic: &SymbolicFactor,
    perm: &Permutation,
    selector: PolicySelector,
) {
    use gpu_multifrontal::core::{MultiGpuOptions, PipelineOptions};
    let serial_opts = FactorOptions { selector: selector.clone(), ..Default::default() };
    let mut m0 = Machine::paper_node();
    let (fs, ss) = factor_permuted(a, symbolic, perm, &mut m0, &serial_opts).unwrap();
    let reference = panel_bits(&fs);
    for ndev in [1usize, 2, 4, 8] {
        let opts = FactorOptions {
            selector: selector.clone(),
            pipeline: PipelineOptions::pipelined(),
            devices: MultiGpuOptions::devices(ndev),
            ..Default::default()
        };
        // Single-machine entry: one host timeline drives all `ndev` lanes.
        let mut m = Machine::paper_node();
        let (f1, s1) = factor_permuted(a, symbolic, perm, &mut m, &opts).unwrap();
        assert_eq!(reference, panel_bits(&f1), "serial × {ndev} devices diverged");
        assert_eq!(s1.oom_fallbacks, ss.oom_fallbacks, "{ndev}-device OOM decisions");
        assert!(m.gpu.is_some(), "machine must get its device back ({ndev} devices)");
        // Parallel entry: devices dealt round-robin over the machines.
        for workers in [1usize, 2, 4, 8] {
            let mut machines: Vec<Machine> = (0..workers).map(|_| Machine::paper_node()).collect();
            let (fp, sp) = factor_permuted_parallel(
                a,
                symbolic,
                perm,
                &mut machines,
                &opts,
                &ParallelOptions::default(),
            )
            .unwrap();
            assert_eq!(
                reference,
                panel_bits(&fp),
                "{workers} workers × {ndev} devices diverged from serial"
            );
            assert_eq!(sp.oom_fallbacks, ss.oom_fallbacks);
            if ndev > 1 {
                assert_eq!(sp.gpu_devices.len(), ndev, "per-device stats must cover the set");
            }
            assert!(machines.iter().all(|mm| mm.gpu.is_some()), "devices must be restored");
        }
    }
}

#[test]
fn multigpu_bitwise_identical_f32_all_families() {
    for a in [
        laplacian_2d(18, 15, Stencil::Faces),
        laplacian_3d(7, 6, 6, Stencil::Faces),
        elasticity_3d(4, 3, 3),
    ] {
        let an = analysis_of(&a);
        let a32: SymCsc<f32> = an.permuted.0.cast();
        for selector in [
            PolicySelector::Baseline(BaselineThresholds::default()),
            PolicySelector::Fixed(PolicyKind::P4),
        ] {
            assert_multigpu_bitwise(&a32, &an.symbolic, &an.perm, selector);
        }
    }
}

#[test]
fn multigpu_bitwise_identical_f64_all_families() {
    for a in [
        laplacian_2d(18, 15, Stencil::Faces),
        laplacian_3d(7, 6, 6, Stencil::Faces),
        elasticity_3d(4, 3, 3),
    ] {
        let an = analysis_of(&a);
        assert_multigpu_bitwise(
            &an.permuted.0,
            &an.symbolic,
            &an.perm,
            PolicySelector::Baseline(BaselineThresholds::default()),
        );
    }
}

#[test]
fn multigpu_oom_pressure_matches_serial_and_recovers() {
    // Undersized devices: multi-device OOM retries must make the same
    // P1-fallback decisions as the serial drain driver (after draining the
    // affected device), and a failed factorization must surface the typed
    // error while leaving every machine's device restored — the machines
    // stay usable for the next run, nothing is poisoned.
    use gpu_multifrontal::core::{MultiGpuOptions, PipelineOptions};
    use gpu_multifrontal::gpusim::{tesla_t10, xeon_5160_core};
    let small_machines = |workers: usize| -> Vec<Machine> {
        (0..workers)
            .map(|_| {
                let mut cfg = tesla_t10();
                cfg.mem_bytes = 2_000; // 500 f32 elements — only tiny fronts fit
                Machine::with_gpu(xeon_5160_core(), cfg)
            })
            .collect()
    };
    let a = laplacian_3d(6, 6, 5, Stencil::Faces);
    let an = analysis_of(&a);
    let a32: SymCsc<f32> = an.permuted.0.cast();
    let serial_opts =
        FactorOptions { selector: PolicySelector::Fixed(PolicyKind::P4), ..Default::default() };
    let mut m0 = small_machines(1);
    let (fs, ss) = factor_permuted(&a32, &an.symbolic, &an.perm, &mut m0[0], &serial_opts).unwrap();
    assert!(ss.oom_fallbacks > 0, "test needs OOM pressure to be meaningful");
    let opts = FactorOptions {
        pipeline: PipelineOptions::pipelined(),
        devices: MultiGpuOptions::devices(4),
        ..serial_opts.clone()
    };
    for workers in [1usize, 2] {
        let mut machines = small_machines(workers);
        let (fm, sm) = factor_permuted_parallel(
            &a32,
            &an.symbolic,
            &an.perm,
            &mut machines,
            &opts,
            &ParallelOptions::default(),
        )
        .unwrap();
        assert_eq!(panel_bits(&fs), panel_bits(&fm), "{workers}-worker OOM bits diverged");
        assert_eq!(sm.oom_fallbacks, ss.oom_fallbacks);

        // An indefinite matrix through the same machines: typed error out,
        // devices back, and the very same machines factor the SPD matrix
        // again afterwards.
        let mut t = Triplet::new(8);
        for i in 0..8 {
            t.push(i, i, if i == 5 { -3.0 } else { 4.0 });
            if i + 1 < 8 {
                t.push(i + 1, i, -1.0);
            }
        }
        let bad = t.assemble();
        let ban = analyze(&bad, OrderingKind::Natural, None).unwrap();
        let b32: SymCsc<f32> = ban.permuted.0.cast();
        let err = factor_permuted_parallel(
            &b32,
            &ban.symbolic,
            &ban.perm,
            &mut machines,
            &opts,
            &ParallelOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, FactorError::NotPositiveDefinite { column: 5 });
        assert!(machines.iter().all(|m| m.gpu.is_some()), "error must not strand devices");
        let (fr, _) = factor_permuted_parallel(
            &a32,
            &an.symbolic,
            &an.perm,
            &mut machines,
            &opts,
            &ParallelOptions::default(),
        )
        .unwrap();
        assert_eq!(panel_bits(&fs), panel_bits(&fr), "machines must stay usable after an error");
    }
}

/// A deterministic, full-rank block of `nrhs` right-hand sides.
fn rhs_block<T: Scalar>(n: usize, nrhs: usize) -> Vec<T> {
    (0..n * nrhs)
        .map(|i| {
            let (r, c) = (i % n, i / n);
            T::from_f64(((r * 31 + c * 17 + 7) % 13) as f64 / 13.0 - 0.4)
        })
        .collect()
}

/// Solve-path analogue of `assert_bitwise_deterministic`: the tree-parallel
/// forward/backward sweeps must reproduce the serial solve bit-for-bit at
/// every worker count, for single and batched right-hand sides.
fn assert_solve_bitwise_deterministic<T: Scalar>(
    a: &SymCsc<T>,
    symbolic: &SymbolicFactor,
    perm: &Permutation,
) {
    let mut machine = Machine::paper_node();
    let (f, _) = factor_permuted(a, symbolic, perm, &mut machine, &baseline_opts()).unwrap();
    let n = symbolic.n;
    for nrhs in [1usize, 4] {
        let b = rhs_block::<T>(n, nrhs);
        let serial = f.solve_many(&b, nrhs);
        let serial_bits: Vec<u64> = serial.iter().map(|&x| x.to_f64().to_bits()).collect();
        for workers in [1usize, 2, 4, 8] {
            let par = f.solve_many_parallel(&b, nrhs, workers);
            let par_bits: Vec<u64> = par.iter().map(|&x| x.to_f64().to_bits()).collect();
            assert_eq!(
                serial_bits, par_bits,
                "{workers}-worker solve (nrhs={nrhs}) must be bitwise identical to serial"
            );
        }
    }
}

#[test]
fn parallel_solve_bitwise_identical_f64_all_families() {
    for a in [
        laplacian_2d(20, 17, Stencil::Faces),
        laplacian_3d(8, 7, 6, Stencil::Faces),
        elasticity_3d(4, 4, 3),
    ] {
        let an = analysis_of(&a);
        assert_solve_bitwise_deterministic(&an.permuted.0, &an.symbolic, &an.perm);
    }
}

#[test]
fn parallel_solve_bitwise_identical_f32_all_families() {
    for a in [
        laplacian_2d(20, 17, Stencil::Faces),
        laplacian_3d(8, 7, 6, Stencil::Faces),
        elasticity_3d(4, 4, 3),
    ] {
        let an = analysis_of(&a);
        let a32: SymCsc<f32> = an.permuted.0.cast();
        assert_solve_bitwise_deterministic(&a32, &an.symbolic, &an.perm);
    }
}

#[test]
fn batched_solve_bitwise_matches_looped_single_rhs() {
    // Column j of a batched solve must equal the solve of column j alone —
    // the kernels underneath dispatch independently of the RHS count.
    let a = laplacian_3d(8, 7, 6, Stencil::Faces);
    let an = analysis_of(&a);
    let mut machine = Machine::paper_node();
    let (f, _) =
        factor_permuted(&an.permuted.0, &an.symbolic, &an.perm, &mut machine, &baseline_opts())
            .unwrap();
    let n = an.symbolic.n;
    let nrhs = 8;
    let b = rhs_block::<f64>(n, nrhs);
    let batched = f.solve_many(&b, nrhs);
    for j in 0..nrhs {
        let col = &b[j * n..(j + 1) * n];
        let single = f.solve(col);
        let batched_col: Vec<u64> =
            batched[j * n..(j + 1) * n].iter().map(|x| x.to_bits()).collect();
        let single_bits: Vec<u64> = single.iter().map(|x| x.to_bits()).collect();
        assert_eq!(single_bits, batched_col, "batched column {j} diverged from single-RHS solve");
    }
}

#[test]
fn refactorization_reuses_symbolic_and_matches_fresh_solver() {
    // Re-running only the numeric phase on a same-pattern matrix must give
    // the same bits as building a solver from scratch on that matrix.
    let a = laplacian_3d(7, 6, 6, Stencil::Faces);
    let a2 = SymCsc::from_parts(
        a.order(),
        a.colptr().to_vec(),
        a.rowind().to_vec(),
        a.values().iter().map(|&v| v * 4.0).collect(),
    );
    let opts = SolverOptions::default();
    let mut m1 = Machine::paper_node();
    let mut solver = SpdSolver::new(&a, &mut m1, &opts).unwrap();
    solver.refactor(&a2, &mut m1).unwrap();
    let mut m2 = Machine::paper_node();
    let fresh = SpdSolver::new(&a2, &mut m2, &opts).unwrap();
    let b = rhs_block::<f64>(a.order(), 1);
    let xr: Vec<u64> = solver.solve(&b).unwrap().iter().map(|x| x.to_bits()).collect();
    let xf: Vec<u64> = fresh.solve(&b).unwrap().iter().map(|x| x.to_bits()).collect();
    assert_eq!(xr, xf, "refactored solver must match a fresh solver bitwise");
}

#[test]
fn sixty_four_concurrent_factorizations() {
    // 8 OS threads × 8 matrices each, every one factored by a 2-worker
    // parallel runtime — 16 scheduler threads live at peak. Each result is
    // compared bit-for-bit against its own serial factorization, so any
    // cross-talk through process-global state (dense thread caps, pools)
    // would show up as a mismatch.
    std::thread::scope(|scope| {
        for tid in 0..8usize {
            scope.spawn(move || {
                for j in 0..8usize {
                    let nx = 5 + (tid + j) % 4;
                    let ny = 4 + (tid * 3 + j) % 5;
                    let a = laplacian_2d(nx, ny, Stencil::Faces);
                    let an = analysis_of(&a);
                    let opts = baseline_opts();
                    let mut serial_machine = Machine::paper_node();
                    let (fs, _) = factor_permuted(
                        &an.permuted.0,
                        &an.symbolic,
                        &an.perm,
                        &mut serial_machine,
                        &opts,
                    )
                    .unwrap();
                    let mut machines = vec![Machine::paper_node(), Machine::paper_node()];
                    let (fp, _) = factor_permuted_parallel(
                        &an.permuted.0,
                        &an.symbolic,
                        &an.perm,
                        &mut machines,
                        &opts,
                        &ParallelOptions { thread_budget: 2 },
                    )
                    .unwrap();
                    assert_eq!(
                        panel_bits(&fs),
                        panel_bits(&fp),
                        "thread {tid} matrix {j} diverged under concurrency"
                    );
                }
            });
        }
    });
}

// ---------------------------------------------------------------------------
// Analysis-pipeline determinism: `analyze_parallel` must reproduce the
// serial `analyze` byte for byte — permutation, elimination tree, supernode
// partition, per-supernode row structures, and the structural fingerprint —
// at every worker count, across matrix families, and at both factor
// precisions. (The `analysis_` prefix is load-bearing: ci.sh gates on these
// tests by name at both default and single-threaded test settings.)
// ---------------------------------------------------------------------------

use gpu_multifrontal::sparse::symbolic::{analyze_parallel, Analysis};

fn analysis_families() -> Vec<(&'static str, SymCsc<f64>)> {
    vec![
        ("laplacian_2d", laplacian_2d(19, 14, Stencil::Faces)),
        ("laplacian_3d", laplacian_3d(7, 6, 5, Stencil::Full)),
        ("elasticity_3d", elasticity_3d(4, 4, 3)),
    ]
}

fn assert_analysis_identical(name: &str, workers: usize, serial: &Analysis, par: &Analysis) {
    let tag = format!("{name} workers={workers}");
    assert_eq!(par.perm.as_slice(), serial.perm.as_slice(), "{tag}: permutation");
    assert_eq!(par.etree.parent, serial.etree.parent, "{tag}: etree parents");
    assert_eq!(par.symbolic.postorder, serial.symbolic.postorder, "{tag}: postorder");
    assert_eq!(
        par.symbolic.num_supernodes(),
        serial.symbolic.num_supernodes(),
        "{tag}: supernode count"
    );
    for (s, (ps, ss)) in par.symbolic.supernodes.iter().zip(&serial.symbolic.supernodes).enumerate()
    {
        assert_eq!(ps.col_start, ss.col_start, "{tag}: supernode {s} col_start");
        assert_eq!(ps.col_end, ss.col_end, "{tag}: supernode {s} col_end");
        assert_eq!(ps.parent, ss.parent, "{tag}: supernode {s} parent");
        assert_eq!(ps.rows, ss.rows, "{tag}: supernode {s} rows");
    }
    assert_eq!(par.fingerprint(), serial.fingerprint(), "{tag}: fingerprint");
}

#[test]
fn analysis_parallel_structures_identical_all_families() {
    let amalg = AmalgamationOptions::default();
    for (name, a) in analysis_families() {
        let serial = analyze(&a, OrderingKind::NestedDissection, Some(&amalg)).unwrap();
        for workers in [1usize, 2, 4, 8] {
            let par = analyze_parallel(&a, OrderingKind::NestedDissection, Some(&amalg), workers)
                .unwrap();
            assert_analysis_identical(name, workers, &serial, &par);
        }
    }
}

#[test]
fn analysis_parallel_identical_without_amalgamation_and_natural_order() {
    // Fundamental supernodes only, and the ordering kinds that fall through
    // to the serial path — the parallel driver must be exact everywhere.
    for (name, a) in analysis_families() {
        for kind in [OrderingKind::Natural, OrderingKind::NestedDissection] {
            let serial = analyze(&a, kind, None).unwrap();
            for workers in [2usize, 8] {
                let par = analyze_parallel(&a, kind, None, workers).unwrap();
                assert_analysis_identical(name, workers, &serial, &par);
            }
        }
    }
}

#[test]
fn analysis_parallel_factors_bitwise_identical_f64() {
    // The downstream check: a factor built from the parallel analysis is
    // bitwise the factor built from the serial one.
    let amalg = AmalgamationOptions::default();
    for (name, a) in analysis_families() {
        let serial = analyze(&a, OrderingKind::NestedDissection, Some(&amalg)).unwrap();
        let opts = baseline_opts();
        let mut m0 = Machine::paper_node();
        let (f0, _) =
            factor_permuted(&serial.permuted.0, &serial.symbolic, &serial.perm, &mut m0, &opts)
                .unwrap();
        for workers in [2usize, 4] {
            let par = analyze_parallel(&a, OrderingKind::NestedDissection, Some(&amalg), workers)
                .unwrap();
            let mut m = Machine::paper_node();
            let (f, _) =
                factor_permuted(&par.permuted.0, &par.symbolic, &par.perm, &mut m, &opts).unwrap();
            assert_eq!(
                panel_bits(&f0),
                panel_bits(&f),
                "{name} workers={workers}: f64 factor from parallel analysis diverged"
            );
        }
    }
}

#[test]
fn analysis_parallel_factors_bitwise_identical_f32() {
    let amalg = AmalgamationOptions::default();
    for (name, a) in analysis_families() {
        let serial = analyze(&a, OrderingKind::NestedDissection, Some(&amalg)).unwrap();
        let opts =
            FactorOptions { selector: PolicySelector::Fixed(PolicyKind::P4), ..Default::default() };
        let a32s: SymCsc<f32> = serial.permuted.0.cast();
        let mut m0 = Machine::paper_node();
        let (f0, _) =
            factor_permuted(&a32s, &serial.symbolic, &serial.perm, &mut m0, &opts).unwrap();
        for workers in [2usize, 8] {
            let par = analyze_parallel(&a, OrderingKind::NestedDissection, Some(&amalg), workers)
                .unwrap();
            let a32p: SymCsc<f32> = par.permuted.0.cast();
            let mut m = Machine::paper_node();
            let (f, _) = factor_permuted(&a32p, &par.symbolic, &par.perm, &mut m, &opts).unwrap();
            assert_eq!(
                panel_bits(&f0),
                panel_bits(&f),
                "{name} workers={workers}: f32 factor from parallel analysis diverged"
            );
        }
    }
}

// ───────────────────────── out-of-core (memory-budgeted) execution ─────────

use gpu_multifrontal::core::{
    in_core_bytes, min_feasible_budget, plan_ooc, PrecisionLadder, SolverOptions, SpdSolver,
};
use gpu_multifrontal::gpusim::{TierParams, DEFAULT_DEVICE_BUDGET};
use gpu_multifrontal::matgen::HugeMatrix;

/// Matrices whose elimination trees leave real spill headroom: the
/// elongated Laplacian's root front is small relative to the total bound
/// (min-feasible ≈ 20% of it), so even a 30% budget is honourable.
fn ooc_families() -> Vec<(&'static str, SymCsc<f64>)> {
    vec![
        ("lap3d-6x6x60", laplacian_3d(6, 6, 60, Stencil::Faces)),
        ("lap3d-7x7x7", laplacian_3d(7, 7, 7, Stencil::Faces)),
        ("elasticity-4x4x3", elasticity_3d(4, 4, 3)),
    ]
}

/// Budget for `frac` of the in-core bound, clamped up to feasibility (the
/// root front's working set is a hard floor no schedule can dodge).
fn budget_for(symbolic: &SymbolicFactor, elem: usize, frac: f64) -> usize {
    let bound = in_core_bytes(symbolic, elem);
    ((bound as f64 * frac) as usize).max(min_feasible_budget(symbolic, elem))
}

/// The tentpole determinism contract: with the ladder off, a budgeted
/// factorization is bitwise identical to the in-core one — at every budget,
/// every worker count, both precisions, and both storage backends.
fn assert_ooc_bitwise_in_core<T: Scalar>(
    name: &str,
    a: &SymCsc<T>,
    symbolic: &SymbolicFactor,
    perm: &Permutation,
) {
    let in_core_opts = FactorOptions::default();
    let mut m0 = Machine::paper_node();
    let (f0, s0) = factor_permuted(a, symbolic, perm, &mut m0, &in_core_opts).unwrap();
    let reference = panel_bits(&f0);
    assert!(s0.ooc.is_none(), "{name}: in-core runs must not report OOC stats");

    for frac in [1.0f64, 0.6, 0.3] {
        let budget = budget_for(symbolic, T::BYTES, frac);
        let opts = FactorOptions { memory_budget: Some(budget), ..Default::default() };

        let mut ms = Machine::paper_node();
        let (fs, ss) = factor_permuted(a, symbolic, perm, &mut ms, &opts).unwrap();
        assert_eq!(
            reference,
            panel_bits(&fs),
            "{name}: serial budgeted factor at {frac} of the bound diverged from in-core"
        );
        let ooc = ss.ooc.as_ref().expect("budgeted runs report OOC stats");
        assert!(
            ooc.resident_peak_bytes <= budget,
            "{name}: residency {} exceeded budget {budget}",
            ooc.resident_peak_bytes
        );
        assert_eq!(
            ss.peak_front_bytes, s0.peak_front_bytes,
            "{name}: the logical peak must stay the symbolic bound under a budget"
        );
        if frac >= 1.0 {
            assert_eq!(ooc.traffic_bytes(), 0, "{name}: a full budget must not spill");
        } else {
            assert!(ooc.traffic_bytes() > 0, "{name}: a {frac} budget must actually spill");
        }

        for workers in [1usize, 2, 4, 8] {
            let mut machines: Vec<Machine> = (0..workers).map(|_| Machine::paper_node()).collect();
            let par = ParallelOptions { thread_budget: 4 };
            let (fp, sp) =
                factor_permuted_parallel(a, symbolic, perm, &mut machines, &opts, &par).unwrap();
            assert_eq!(
                reference,
                panel_bits(&fp),
                "{name}: {workers}-worker budgeted factor at {frac} diverged"
            );
            let pooc = sp.ooc.as_ref().expect("parallel budgeted runs report OOC stats");
            assert_eq!(pooc, ooc, "{name}: OOC stats are schedule-independent");
        }

        // Heap storage replays the same plan.
        let heap_opts = FactorOptions { front_storage: FrontStorage::Heap, ..opts.clone() };
        let mut mh = Machine::paper_node();
        let (fh, _) = factor_permuted(a, symbolic, perm, &mut mh, &heap_opts).unwrap();
        assert_eq!(
            reference,
            panel_bits(&fh),
            "{name}: heap-storage budgeted factor at {frac} diverged"
        );
    }
}

#[test]
fn ooc_budgeted_bitwise_identical_to_in_core_f64() {
    for (name, a) in ooc_families() {
        let an = analysis_of(&a);
        assert_ooc_bitwise_in_core(name, &an.permuted.0, &an.symbolic, &an.perm);
    }
}

#[test]
fn ooc_budgeted_bitwise_identical_to_in_core_f32() {
    for (name, a) in ooc_families() {
        let an = analysis_of(&a);
        let a32: SymCsc<f32> = an.permuted.0.cast();
        assert_ooc_bitwise_in_core(name, &a32, &an.symbolic, &an.perm);
    }
}

#[test]
fn ooc_bf16_ladder_fixed_config_is_schedule_independent() {
    // With a 16-bit spill ladder the factor differs from in-core (storage
    // rounding is real), but for a fixed (budget, ladder) pair it is still
    // bitwise identical across serial/parallel and every worker count.
    let a = laplacian_3d(6, 6, 60, Stencil::Faces);
    let an = analysis_of(&a);
    let a32: SymCsc<f32> = an.permuted.0.cast();
    let budget = budget_for(&an.symbolic, 4, 0.4);

    let mut m0 = Machine::paper_node();
    let (f_incore, _) =
        factor_permuted(&a32, &an.symbolic, &an.perm, &mut m0, &FactorOptions::default()).unwrap();

    for ladder in [PrecisionLadder::Bf16, PrecisionLadder::F16] {
        let opts = FactorOptions { memory_budget: Some(budget), ladder, ..Default::default() };
        let mut ms = Machine::paper_node();
        let (fs, ss) = factor_permuted(&a32, &an.symbolic, &an.perm, &mut ms, &opts).unwrap();
        let reference = panel_bits(&fs);
        assert_ne!(
            reference,
            panel_bits(&f_incore),
            "{ladder:?}: a tight budget must actually degrade some spilled block"
        );
        // Traffic shrinks by exactly the storage ratio (2 B vs 4 B): the
        // eviction schedule is chosen on native sizes, so it is identical.
        assert_eq!(ss.ooc.as_ref().unwrap().elem_bytes, 4);
        for workers in [1usize, 2, 4, 8] {
            let mut machines: Vec<Machine> = (0..workers).map(|_| Machine::paper_node()).collect();
            let par = ParallelOptions { thread_budget: 4 };
            let (fp, _) =
                factor_permuted_parallel(&a32, &an.symbolic, &an.perm, &mut machines, &opts, &par)
                    .unwrap();
            assert_eq!(
                reference,
                panel_bits(&fp),
                "{ladder:?}: {workers}-worker ladder factor diverged from serial"
            );
        }
    }
}

#[test]
fn ooc_ladder_halves_spill_traffic_without_changing_the_schedule() {
    let a = laplacian_3d(6, 6, 60, Stencil::Faces);
    let an = analysis_of(&a);
    let tiers = TierParams::default();
    let budget = budget_for(&an.symbolic, 4, 0.4);
    let off = plan_ooc(&an.symbolic, 4, budget, PrecisionLadder::Off, &tiers).unwrap();
    let bf16 = plan_ooc(&an.symbolic, 4, budget, PrecisionLadder::Bf16, &tiers).unwrap();
    assert!(off.stats.traffic_bytes() > 0);
    assert_eq!(
        off.stats.traffic_bytes(),
        2 * bf16.stats.traffic_bytes(),
        "16-bit storage must exactly halve f32 spill traffic"
    );
    assert_eq!(off.stats.evictions, bf16.stats.evictions);
    assert_eq!(off.stats.loads, bf16.stats.loads);
}

#[test]
fn ooc_infeasible_budget_is_typed() {
    let a = laplacian_3d(7, 7, 7, Stencil::Faces);
    let an = analysis_of(&a);
    let opts = FactorOptions { memory_budget: Some(1024), ..Default::default() };
    let mut machine = Machine::paper_node();
    match factor_permuted(&an.permuted.0, &an.symbolic, &an.perm, &mut machine, &opts) {
        Err(FactorError::BudgetTooSmall { budget, required }) => {
            assert_eq!(budget, 1024);
            assert_eq!(required, min_feasible_budget(&an.symbolic, 8));
        }
        other => panic!("expected BudgetTooSmall, got {:?}", other.map(|(_, s)| s.total_time)),
    }
}

#[test]
fn ooc_streamed_solve_matches_in_core_solve_on_a_budgeted_factor() {
    // Factor under a bf16 ladder (panels on disk hold rounded bits), then
    // solve both ways: the streaming sweep reads the same re-promoted slab
    // the in-core sweep does, so answers are bitwise identical.
    let a = laplacian_3d(6, 6, 30, Stencil::Faces);
    let an = analysis_of(&a);
    let a32: SymCsc<f32> = an.permuted.0.cast();
    let tiers = TierParams::default();
    let budget = budget_for(&an.symbolic, 4, 0.4);
    let opts = FactorOptions {
        memory_budget: Some(budget),
        ladder: PrecisionLadder::Bf16,
        ..Default::default()
    };
    let mut machine = Machine::paper_node();
    let (f, stats) = factor_permuted(&a32, &an.symbolic, &an.perm, &mut machine, &opts).unwrap();
    assert!(stats.ooc.as_ref().unwrap().panels_spilled_at_end > 0, "panels must end spilled");

    let nrhs = 3;
    let b: Vec<f32> = rhs_block(a.order(), nrhs);
    let reference = f.solve_many(&b, nrhs);
    let (x, st) = f
        .solve_many_streamed(&b, nrhs, budget, PrecisionLadder::Bf16, &tiers, &mut machine)
        .unwrap();
    assert_eq!(
        reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "streamed solve must be bitwise identical to the in-core sweep"
    );
    assert!(st.loads > 0, "spilled panels must stream back in");
    assert!(st.resident_peak_bytes <= budget);
}

#[test]
fn ooc_huge_family_bounds_exceed_default_tier_budgets() {
    // Analyze-only (the symbolic phase is cheap even at out-of-core size):
    // at quarter scale the huge families already outgrow device + pinned
    // host, which is what forces the disk tier into play at full scale.
    let tiers = TierParams::default();
    for huge in HugeMatrix::ALL {
        let a = huge.generate_scaled(0.25);
        let an = analysis_of(&a);
        let bound = in_core_bytes(&an.symbolic, 4);
        assert!(
            bound > DEFAULT_DEVICE_BUDGET + tiers.host_capacity,
            "{}: f32 bound {bound} must exceed device+host default budgets",
            huge.name()
        );
        assert!(huge.full_order() >= 1_000_000, "{} is not huge-N", huge.name());
    }
}

#[test]
fn ooc_huge_family_factors_under_budget_at_test_scale() {
    // Numeric check at a scale debug builds can afford: the sgi_4M family,
    // shrunk, still factors bitwise-identically to in-core at 60% and 30%
    // budgets.
    let a = HugeMatrix::Sgi4M.generate_scaled(0.12);
    let an = analysis_of(&a);
    let a32: SymCsc<f32> = an.permuted.0.cast();
    let mut m0 = Machine::paper_node();
    let (f0, _) =
        factor_permuted(&a32, &an.symbolic, &an.perm, &mut m0, &FactorOptions::default()).unwrap();
    let reference = panel_bits(&f0);
    for frac in [0.6f64, 0.3] {
        let budget = budget_for(&an.symbolic, 4, frac);
        let opts = FactorOptions { memory_budget: Some(budget), ..Default::default() };
        let mut machine = Machine::paper_node();
        let (f, stats) =
            factor_permuted(&a32, &an.symbolic, &an.perm, &mut machine, &opts).unwrap();
        assert_eq!(reference, panel_bits(&f), "sgi_4M at {frac} of the bound diverged");
        let ooc = stats.ooc.unwrap();
        assert!(ooc.resident_peak_bytes <= budget);
        assert!(ooc.traffic_bytes() > 0);
    }
}

#[test]
fn ooc_budgeted_solver_refines_to_f64_accuracy() {
    // End-to-end: f32 factor under a 40% budget with bf16 spill storage;
    // f64 iterative refinement must still absorb both the compute and the
    // storage error.
    use gpu_multifrontal::matgen::rhs_for_solution;
    let a = laplacian_3d(6, 6, 30, Stencil::Faces);
    let an = analysis_of(&a);
    let budget = budget_for(&an.symbolic, 4, 0.4);
    let opts = SolverOptions {
        ordering: OrderingKind::NestedDissection,
        amalgamation: Some(AmalgamationOptions::default()),
        factor: FactorOptions {
            memory_budget: Some(budget),
            ladder: PrecisionLadder::Bf16,
            ..Default::default()
        },
        precision: Precision::F32,
        analysis_workers: 0,
    };
    let mut machine = Machine::paper_node();
    let s = SpdSolver::new(&a, &mut machine, &opts).unwrap();
    let (_, b) = rhs_for_solution(&a, 13);
    let refined = s.solve_refined(&b, 8, 1e-13).unwrap();
    assert!(
        refined.converged,
        "refinement must converge through bf16 spill storage: {:?}",
        refined.residual_history
    );
}
