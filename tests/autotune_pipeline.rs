//! The paper's complete auto-tuning workflow as one integration test:
//! measure per-policy timings → train on one set of matrices → deploy the
//! model on an *unseen* matrix → verify it generalizes.

use gpu_multifrontal::autotune::{train, Dataset, Objective, TrainOptions};
use gpu_multifrontal::core::{factor_permuted, FactorOptions, FactorStats, PolicySelector};
use gpu_multifrontal::matgen::{elasticity_3d, laplacian_3d, Stencil};
use gpu_multifrontal::prelude::*;
use gpu_multifrontal::sparse::symbolic::{analyze, Analysis};
use gpu_multifrontal::sparse::AmalgamationOptions;

fn run(a32: &SymCsc<f32>, analysis: &Analysis, selector: PolicySelector) -> FactorStats {
    let mut machine = Machine::paper_node();
    let opts = FactorOptions { selector, record_stats: true, ..Default::default() };
    factor_permuted(a32, &analysis.symbolic, &analysis.perm, &mut machine, &opts).expect("SPD").1
}

fn dataset_of(a: &SymCsc<f64>) -> (Analysis, SymCsc<f32>, Dataset, [FactorStats; 4]) {
    let analysis =
        analyze(a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default())).unwrap();
    let a32: SymCsc<f32> = analysis.permuted.0.cast();
    let stats: Vec<FactorStats> = PolicyKind::ALL
        .into_iter()
        .map(|p| run(&a32, &analysis, PolicySelector::Fixed(p)))
        .collect();
    let stats: [FactorStats; 4] = stats.try_into().unwrap();
    let ds = Dataset::from_policy_runs(&[&stats[0], &stats[1], &stats[2], &stats[3]]);
    (analysis, a32, ds, stats)
}

#[test]
fn model_generalizes_to_unseen_matrix() {
    // Train across two matrix classes (the paper trains over its whole
    // suite)…
    let (_, _, ds_a, _) = dataset_of(&laplacian_3d(12, 12, 12, Stencil::Full));
    let (_, _, ds_b, _) = dataset_of(&elasticity_3d(6, 6, 6));
    let model = train(&Dataset::merge([ds_a, ds_b]), &TrainOptions::default());

    // …deploy on a larger elasticity problem it never saw.
    let a_test = elasticity_3d(8, 8, 8);
    let (analysis, a32, ds_test, stats) = dataset_of(&a_test);
    let modelr = run(&a32, &analysis, PolicySelector::Model(model));
    let ideal = ds_test.ideal_time();
    let t1 = stats[0].total_time;
    assert!(modelr.total_time < t1, "model hybrid must beat serial on the unseen matrix");
    // Staying within 60 % of the per-call ideal on a *different matrix
    // class* is the realistic bar for a 12-feature linear model — the
    // paper's ~2 % figure is in-suite. The hard requirement is that the
    // model transfers profitably at all (it does: > 1.4× over serial here).
    assert!(
        modelr.total_time < ideal * 1.6,
        "unseen-matrix model time {:.4} vs ideal {ideal:.4}",
        modelr.total_time
    );
    assert!(t1 / modelr.total_time > 1.3, "transfer speedup too small");
}

#[test]
fn cost_sensitive_training_not_worse_than_cross_entropy() {
    let a = laplacian_3d(13, 13, 13, Stencil::Full);
    let (_, _, ds, _) = dataset_of(&a);
    let (tr, te) = ds.split(0.75, 3);
    let ec = train(&tr, &TrainOptions::default());
    let ce = train(&tr, &TrainOptions { objective: Objective::CrossEntropy, ..Default::default() });
    let t_ec = te.predictor_time(|m, k| ec.predict(m, k));
    let t_ce = te.predictor_time(|m, k| ce.predict(m, k));
    assert!(
        t_ec <= t_ce * 1.05,
        "expected-cost training {t_ec:.5} must not lose to cross-entropy {t_ce:.5}"
    );
}

#[test]
fn oracle_is_lower_bound_for_all_selectors() {
    let a = laplacian_3d(11, 11, 11, Stencil::Faces);
    let (analysis, a32, ds, stats) = dataset_of(&a);
    let oracle = run(&a32, &analysis, PolicySelector::Oracle(ds.oracle_table()));
    for st in &stats {
        assert!(oracle.total_time <= st.total_time * 1.001);
    }
    let model = train(&ds, &TrainOptions::default());
    let modelr = run(&a32, &analysis, PolicySelector::Model(model));
    assert!(oracle.total_time <= modelr.total_time * 1.001);
    let base = run(&a32, &analysis, PolicySelector::Baseline(BaselineThresholds::default()));
    assert!(oracle.total_time <= base.total_time * 1.001);
}

#[test]
fn training_data_joins_runs_coherently() {
    let a = laplacian_3d(9, 9, 9, Stencil::Faces);
    let (analysis, _, ds, stats) = dataset_of(&a);
    assert_eq!(ds.len(), analysis.symbolic.num_supernodes());
    // Every per-policy column of the dataset sums to that run's F-U total.
    for (j, st) in stats.iter().enumerate() {
        let from_ds: f64 = ds.points.iter().map(|p| p.times[j]).sum();
        let from_st: f64 = st.records.iter().map(|r| r.total).sum();
        assert!((from_ds - from_st).abs() < 1e-12);
    }
}
