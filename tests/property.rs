//! Property-based tests (proptest) over the core invariants:
//! random sparse SPD systems must factor and solve correctly under any
//! policy/ordering combination; dense kernels must match their references
//! on arbitrary shapes; permutations must compose lawfully.

use gpu_multifrontal::core::{FactorOptions, PolicySelector};
use gpu_multifrontal::dense::{
    gemm, gemm_ref, potrf, syrk_lower, syrk_ref, trsm_right_lower_trans, DenseMat, Transpose,
};
use gpu_multifrontal::matgen::random_spd_sparse;
use gpu_multifrontal::prelude::*;
use gpu_multifrontal::sparse::{AmalgamationOptions, Permutation};
use proptest::prelude::*;

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::P1),
        Just(PolicyKind::P2),
        Just(PolicyKind::P3),
        Just(PolicyKind::P4),
    ]
}

fn ordering_strategy() -> impl Strategy<Value = OrderingKind> {
    prop_oneof![
        Just(OrderingKind::Natural),
        Just(OrderingKind::Rcm),
        Just(OrderingKind::MinimumDegree),
        Just(OrderingKind::NestedDissection),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random sparse SPD system solves to refinement accuracy under any
    /// (policy, ordering) pair.
    #[test]
    fn random_spd_systems_solve(
        n in 10usize..160,
        density in 2usize..10,
        seed in 0u64..1000,
        policy in policy_strategy(),
        ordering in ordering_strategy(),
    ) {
        let a = random_spd_sparse(n, density, seed);
        let mut machine = Machine::paper_node();
        let opts = SolverOptions {
            ordering,
            amalgamation: Some(AmalgamationOptions::default()),
            factor: FactorOptions { selector: PolicySelector::Fixed(policy), ..Default::default() },
            precision: Precision::F32,
            analysis_workers: 0,
        };
        let solver = SpdSolver::new(&a, &mut machine, &opts).expect("diag-dominant ⇒ SPD");
        let (xtrue, b) = gpu_multifrontal::matgen::rhs_for_solution(&a, seed ^ 0xABCD);
        let sol = solver.solve_refined(&b, 6, 1e-12).unwrap();
        let err = sol.x.iter().zip(&xtrue).map(|(p, q)| (p - q).abs()).fold(0.0f64, f64::max);
        let scale = xtrue.iter().map(|v| v.abs()).fold(0.0f64, f64::max).max(1.0);
        prop_assert!(err < 1e-6 * scale, "forward error {err:.3e}");
    }

    /// Factor nnz and simulated time are invariant to which policy computes
    /// them (structure is policy-independent; time differs, structure not).
    #[test]
    fn structure_is_policy_independent(
        n in 20usize..100,
        seed in 0u64..100,
        p1 in policy_strategy(),
        p2 in policy_strategy(),
    ) {
        let a = random_spd_sparse(n, 5, seed);
        let mk = |p: PolicyKind| {
            let mut machine = Machine::paper_node();
            let opts = SolverOptions {
                ordering: OrderingKind::NestedDissection,
                amalgamation: None,
                factor: FactorOptions { selector: PolicySelector::Fixed(p), ..Default::default() },
                precision: Precision::F32,
                analysis_workers: 0,
            };
            SpdSolver::new(&a, &mut machine, &opts).unwrap().factor_nnz()
        };
        prop_assert_eq!(mk(p1), mk(p2));
    }

    /// Dense gemm matches the naive reference for arbitrary shapes and
    /// transposes.
    #[test]
    fn gemm_matches_reference(
        m in 1usize..24,
        n in 1usize..24,
        kk in 0usize..24,
        ta in any::<bool>(),
        tb in any::<bool>(),
        seed in 0u64..50,
    ) {
        let (ta, tb) = (
            if ta { Transpose::Yes } else { Transpose::No },
            if tb { Transpose::Yes } else { Transpose::No },
        );
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut rnd = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let (ar, ac) = if ta == Transpose::No { (m, kk) } else { (kk, m) };
        let (br, bc) = if tb == Transpose::No { (kk, n) } else { (n, kk) };
        let a = DenseMat::<f64>::from_fn(ar.max(1), ac.max(1), |_, _| rnd());
        let b = DenseMat::<f64>::from_fn(br.max(1), bc.max(1), |_, _| rnd());
        let c0 = DenseMat::<f64>::from_fn(m, n, |_, _| rnd());
        let mut c = c0.clone();
        gemm(ta, tb, m, n, kk, 1.5, a.as_slice(), ar.max(1), b.as_slice(), br.max(1), -0.5, c.as_mut_slice(), m);
        let mut cref = c0.clone();
        gemm_ref(ta, tb, m, n, kk, 1.5, &a, &b, -0.5, &mut cref);
        prop_assert!(c.max_abs_diff(&cref) < 1e-10);
    }

    /// syrk matches its reference and never touches the upper triangle.
    #[test]
    fn syrk_matches_reference(n in 1usize..32, k in 0usize..32, seed in 0u64..50) {
        let mut s = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
        let mut rnd = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let a = DenseMat::<f64>::from_fn(n, k.max(1), |_, _| rnd());
        let c0 = DenseMat::<f64>::from_fn(n, n, |_, _| rnd());
        let mut c = c0.clone();
        syrk_lower(n, k, -1.0, a.as_slice(), n, 1.0, c.as_mut_slice(), n);
        let mut cref = c0.clone();
        syrk_ref(n, k, -1.0, &a, 1.0, &mut cref);
        for j in 0..n {
            for i in 0..n {
                if i >= j {
                    prop_assert!((c[(i, j)] - cref[(i, j)]).abs() < 1e-10);
                } else {
                    prop_assert_eq!(c[(i, j)], c0[(i, j)]);
                }
            }
        }
    }

    /// potrf ∘ trsm reconstructs random SPD blocks.
    #[test]
    fn potrf_trsm_roundtrip(n in 1usize..40, m in 1usize..24, seed in 0u64..50) {
        let spd = gpu_multifrontal::dense::matrix::random_spd::<f64>(n, seed);
        let mut l = spd.clone();
        potrf(n, l.as_mut_slice(), n).unwrap();
        l.zero_upper();
        let mut s = seed | 1;
        let mut rnd = move || {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let b0 = DenseMat::<f64>::from_fn(m, n, |_, _| rnd());
        let mut x = b0.clone();
        trsm_right_lower_trans(m, n, l.as_slice(), n, x.as_mut_slice(), m);
        prop_assert!(x.matmul(&l.transpose()).max_abs_diff(&b0) < 1e-7 * (n as f64));
    }

    /// The front arena's measured high-water mark never exceeds the symbolic
    /// working-storage bound, for any ordering × amalgamation combination —
    /// the guarantee that lets the numeric phase pre-allocate all front
    /// storage up front.
    #[test]
    fn arena_high_water_within_symbolic_bound(
        n in 10usize..150,
        density in 2usize..8,
        seed in 0u64..500,
        ordering in ordering_strategy(),
        amalgamate in any::<bool>(),
    ) {
        use gpu_multifrontal::core::factor_permuted;
        use gpu_multifrontal::sparse::symbolic::analyze;
        let a = random_spd_sparse(n, density, seed);
        let amal = if amalgamate { Some(AmalgamationOptions::default()) } else { None };
        let an = analyze(&a, ordering, amal.as_ref()).expect("generated SPD matrices have full diagonals");
        let mut machine = Machine::paper_node();
        let (_, stats) = factor_permuted(
            &an.permuted.0,
            &an.symbolic,
            &an.perm,
            &mut machine,
            &FactorOptions::default(),
        )
        .expect("diag-dominant ⇒ SPD");
        let bound = an.symbolic.update_stack_peak() * 8;
        prop_assert!(
            stats.peak_front_bytes <= bound,
            "arena high-water {} exceeds symbolic bound {}",
            stats.peak_front_bytes,
            bound
        );
        prop_assert!(stats.peak_front_bytes > 0);
        prop_assert_eq!(stats.front_alloc_events, 2);
    }

    /// Stream/event semantics of the GPU simulator, under arbitrary op
    /// interleavings: `wait_event` never moves a stream's clock backwards
    /// (it is a forward-only max), stream tails never regress as work is
    /// enqueued, and `event_query` answers exactly "has the event's
    /// timestamp passed".
    #[test]
    fn gpusim_wait_event_is_forward_only(
        ops in prop::collection::vec((0u8..4, 0usize..3, 0usize..8, 1usize..64), 1..60),
    ) {
        use gpu_multifrontal::gpusim::{CopyMode, DevMat, Event, Machine};
        let mut machine = Machine::paper_node();
        let (host, gpu) = machine.host_and_gpu().unwrap();
        let streams = [gpu.stream(0), gpu.stream(1), gpu.stream(2)];
        let buf = gpu.alloc(4096).unwrap();
        let src = vec![1.25f32; 64];
        let mut dst = vec![0.0f32; 64];
        let mut events: Vec<Event> = Vec::new();
        for &(kind, si, ei, n) in &ops {
            let s = streams[si];
            let before = gpu.stream_tail(s);
            match kind {
                0 => gpu.h2d(s, DevMat::whole(buf, n), n, 1, &src, n, true, CopyMode::Async, host),
                1 => gpu.d2h(s, DevMat::whole(buf, n), n, 1, &mut dst, n, true, CopyMode::Async, host),
                2 => {
                    let e = gpu.record_event(s);
                    // An event records the stream's tail at record time.
                    prop_assert_eq!(e.0.to_bits(), gpu.stream_tail(s).to_bits());
                    events.push(e);
                }
                _ => {
                    if !events.is_empty() {
                        let e = events[ei % events.len()];
                        gpu.wait_event(s, e);
                        let after = gpu.stream_tail(s);
                        prop_assert!(after >= before, "wait_event moved a stream backwards");
                        prop_assert!(after >= e.0, "stream must not run ahead of its dependency");
                        prop_assert!(gpu.event_query(e, after), "event complete at the waited tail");
                    }
                }
            }
            prop_assert!(gpu.stream_tail(s) >= before, "stream tails must be monotone");
        }
        // event_query is exactly a timestamp comparison — no side effects.
        for e in &events {
            prop_assert!(gpu.event_query(*e, e.0));
            prop_assert!(!gpu.event_query(*e, e.0 - 1e-9));
        }
    }

    /// Record/wait chains are transitive: if stream B waits on an event from
    /// A and C waits on an event B recorded afterwards, C's clock covers A's
    /// original event — dependencies propagate through intermediate streams.
    #[test]
    fn gpusim_event_chains_are_transitive(
        na in 1usize..64, nb in 1usize..64, nc in 1usize..64,
    ) {
        use gpu_multifrontal::gpusim::{CopyMode, DevMat, Machine};
        let mut machine = Machine::paper_node();
        let (host, gpu) = machine.host_and_gpu().unwrap();
        let (a, b, c) = (gpu.stream(0), gpu.stream(1), gpu.stream(2));
        let buf = gpu.alloc(64).unwrap();
        let src = vec![0.5f32; 64];
        let mut dst = vec![0.0f32; 64];
        gpu.h2d(a, DevMat::whole(buf, na), na, 1, &src, na, true, CopyMode::Async, host);
        let e1 = gpu.record_event(a);
        gpu.wait_event(b, e1);
        gpu.h2d(b, DevMat::whole(buf, nb), nb, 1, &src, nb, true, CopyMode::Async, host);
        let e2 = gpu.record_event(b);
        gpu.wait_event(c, e2);
        gpu.d2h(c, DevMat::whole(buf, nc), nc, 1, &mut dst, nc, true, CopyMode::Async, host);
        prop_assert!(e2.0 >= e1.0, "downstream event must cover its dependency");
        prop_assert!(gpu.stream_tail(c) >= e1.0, "transitive dependency must reach stream C");
        // Host-side wait on the final d2h makes every upstream event queryable.
        let done = gpu.record_event(c);
        gpu.wait_event_host(done, host);
        prop_assert!(gpu.event_query(e1, host.now()));
        prop_assert!(gpu.event_query(e2, host.now()));
        prop_assert!(gpu.event_query(done, host.now()));
    }

    /// A d2h that waits (via an event) on an h2d observes exactly the bytes
    /// the upload wrote, for arbitrary payloads and cross-stream hand-offs.
    #[test]
    fn gpusim_d2h_after_h2d_roundtrips_data(
        vals in prop::collection::vec(-1e6f32..1e6, 1..128),
        cross_stream in any::<bool>(),
    ) {
        use gpu_multifrontal::gpusim::{CopyMode, DevMat, Machine};
        let mut machine = Machine::paper_node();
        let (host, gpu) = machine.host_and_gpu().unwrap();
        let up = gpu.stream(0);
        let down = if cross_stream { gpu.stream(1) } else { up };
        let n = vals.len();
        let buf = gpu.alloc(n).unwrap();
        gpu.h2d(up, DevMat::whole(buf, n), n, 1, &vals, n, true, CopyMode::Async, host);
        let uploaded = gpu.record_event(up);
        gpu.wait_event(down, uploaded);
        let mut out = vec![0.0f32; n];
        gpu.d2h(down, DevMat::whole(buf, n), n, 1, &mut out, n, true, CopyMode::Async, host);
        let done = gpu.record_event(down);
        gpu.wait_event_host(done, host);
        for (i, (&x, &y)) in vals.iter().zip(&out).enumerate() {
            prop_assert!(x.to_bits() == y.to_bits(), "lane {i} corrupted in h2d→d2h round trip");
        }
        gpu.free(buf).unwrap();
    }

    /// The intra-front tiled schedule matches the monolithic dense kernels
    /// at factorization accuracy on arbitrary front shapes: random `(s, k)`
    /// including full-pivot fronts (`k = s`), degenerate one-tile plans
    /// (`tile ≥ s`), and tile grids whose partial tiles straddle the
    /// pivot/update boundary (`k % tile ≠ 0`). The tiled loop nest is a
    /// different — but numerically equivalent — elimination order, so the
    /// comparison is at accuracy, not bitwise (the determinism suite covers
    /// bitwise serial-vs-parallel identity of the tiled schedule itself).
    #[test]
    fn tiled_front_matches_monolithic(
        s in 2usize..96,
        kfrac in 1usize..=100,
        tile in 1usize..40,
        seed in 0u64..500,
    ) {
        use gpu_multifrontal::core::{process_front_tiled, Front, TilingOptions};
        use gpu_multifrontal::dense::{potrf as dpotrf, syrk_lower, trsm_right_lower_trans as dtrsm};
        let k = (s * kfrac).div_ceil(100).clamp(1, s);
        let tiling = TilingOptions { enabled: true, tile, min_front: 1 };
        let Some(plan) = tiling.plan(s, k) else {
            // Single-task plans are never expanded; nothing to compare.
            return Ok(());
        };
        let a = gpu_multifrontal::dense::matrix::random_spd::<f64>(s, seed ^ 0x7151ED);
        // Monolithic reference: potrf on the pivot block, then one trsm and
        // one syrk over the whole update region.
        let mut mono = a.as_slice().to_vec();
        dpotrf(k, &mut mono, s).unwrap();
        if s > k {
            let m = s - k;
            let piv: Vec<f64> = (0..k * k)
                .map(|p| if p % k >= p / k { mono[(p / k) * s + p % k] } else { 0.0 })
                .collect();
            dtrsm(m, k, &piv, k, &mut mono[k..], s);
            let (pc, tr) = mono.split_at_mut(k * s);
            syrk_lower(m, k, -1.0, &pc[k..], s, 1.0, &mut tr[k..], s);
        }
        let mut tiled = a.as_slice().to_vec();
        let mut machine = Machine::paper_node();
        let mut f = Front { s, k, data: &mut tiled };
        process_front_tiled(&mut f, &plan, &mut machine.host, false).unwrap();
        let tol = 1e-9 * s as f64;
        for j in 0..s {
            for i in j..s {
                if j < k || i >= k {
                    let (t, m0) = (tiled[i + j * s], mono[i + j * s]);
                    prop_assert!(
                        (t - m0).abs() < tol,
                        "(s={s},k={k},tile={tile}) entry ({i},{j}): tiled {t} vs monolithic {m0}"
                    );
                }
            }
        }
    }

    /// Permutation composition and inversion laws.
    #[test]
    fn permutation_laws(n in 1usize..64, seed in 0u64..100) {
        let mut v: Vec<usize> = (0..n).collect();
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for i in (1..n).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            let j = (s % (i as u64 + 1)) as usize;
            v.swap(i, j);
        }
        let p = Permutation::from_vec(v);
        let q = p.inverse();
        // p ∘ p⁻¹ = id in both orders.
        for i in 0..n {
            prop_assert_eq!(p.old_of(q.old_of(i)) , i);
            prop_assert_eq!(q.old_of(p.old_of(i)) , i);
        }
        let x: Vec<u32> = (0..n as u32).collect();
        prop_assert_eq!(p.unpermute_vec(&p.permute_vec(&x)), x);
    }
}

// ---------------------------------------------------------------------------
// Hostile-input properties: no structurally singular or non-finite input may
// panic the analysis, the solver constructor, or server admission — every
// path must surface the same typed error.
// ---------------------------------------------------------------------------

/// `a` with all of column `knockout`'s entries (including its diagonal)
/// removed — a structurally singular pattern no ordering can repair.
fn knock_out_diagonal(a: &SymCsc<f64>, knockout: usize) -> SymCsc<f64> {
    let mut t = Triplet::new(a.order());
    for j in 0..a.order() {
        for (&i, &v) in a.col_rows(j).iter().zip(a.col_vals(j)) {
            if i != knockout && j != knockout {
                t.push(i, j, v);
            }
        }
    }
    t.assemble()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A missing diagonal is a typed `AnalyzeError` from both analysis
    /// drivers at every worker count — never a panic, never an `Ok`.
    #[test]
    fn missing_diagonal_is_typed_end_to_end(
        n in 8usize..80,
        density in 2usize..8,
        seed in 0u64..500,
        knockout_frac in 0.0f64..1.0,
        ordering in ordering_strategy(),
    ) {
        use gpu_multifrontal::sparse::symbolic::{analyze, analyze_parallel, AnalyzeError};
        let a = random_spd_sparse(n, density, seed);
        let knockout = ((knockout_frac * n as f64) as usize).min(n - 1);
        let bad = knock_out_diagonal(&a, knockout);
        let want = AnalyzeError::MissingDiagonal { col: knockout };
        prop_assert_eq!(analyze(&bad, ordering, None).unwrap_err(), want);
        for workers in [1usize, 4] {
            prop_assert_eq!(
                analyze_parallel(&bad, ordering, None, workers).unwrap_err(),
                want
            );
        }
    }

    /// The same hostile matrix through server admission: a typed
    /// `SubmitError::Analyze`, and the server keeps serving afterwards.
    #[test]
    fn missing_diagonal_rejected_by_server_admission(
        n in 8usize..48,
        density in 2usize..6,
        seed in 0u64..200,
        workers in 0usize..5,
    ) {
        use gpu_multifrontal::server::{Server, ServerConfig, SubmitError};
        use gpu_multifrontal::sparse::symbolic::AnalyzeError;
        let a = random_spd_sparse(n, density, seed);
        let knockout = (seed as usize) % n;
        let bad = knock_out_diagonal(&a, knockout);
        let server = Server::start(ServerConfig {
            solver: SolverOptions {
                precision: Precision::F64,
                analysis_workers: workers,
                ..Default::default()
            },
            ..Default::default()
        });
        let got = server.submit("prop", &bad);
        prop_assert_eq!(
            got,
            Err(SubmitError::Analyze(AnalyzeError::MissingDiagonal { col: knockout }))
        );
        // The rejection must not poison the service.
        let sid = server.submit("prop", &a).expect("well-formed submission still admits");
        let b = vec![1.0; n];
        prop_assert!(server.solve(sid, b).is_ok());
    }

    /// Non-finite values in a Matrix Market stream are parse errors, never
    /// matrices.
    #[test]
    fn non_finite_matrix_market_is_a_parse_error(
        n in 1usize..20,
        bad_kind in 0usize..3,
        bad_pos in 0usize..20,
    ) {
        use gpu_multifrontal::sparse::io::{read_matrix_market, MmError};
        use std::io::BufReader;
        let bad_tok = ["nan", "inf", "-inf"][bad_kind];
        let bad_pos = bad_pos.min(n - 1);
        let mut text = format!(
            "%%MatrixMarket matrix coordinate real symmetric\n{n} {n} {n}\n"
        );
        for i in 1..=n {
            if i - 1 == bad_pos {
                text.push_str(&format!("{i} {i} {bad_tok}\n"));
            } else {
                text.push_str(&format!("{i} {i} 2.0\n"));
            }
        }
        let r: Result<SymCsc<f64>, _> = read_matrix_market(BufReader::new(text.as_bytes()));
        prop_assert!(matches!(r, Err(MmError::Parse(_))), "{} must not parse", bad_tok);
    }
}

// ───────────────────────── out-of-core residency invariants ────────────────

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The planned device residency never exceeds the budget at ANY event —
    /// not just at step boundaries — for random structures, random budget
    /// fractions, and every ladder.
    #[test]
    fn ooc_residency_never_exceeds_budget(
        n in 30usize..200,
        density in 2usize..8,
        seed in 0u64..500,
        frac_pct in 5usize..101,
        ladder_ix in 0usize..3,
    ) {
        use gpu_multifrontal::core::{in_core_bytes, min_feasible_budget, plan_ooc, PrecisionLadder};
        use gpu_multifrontal::gpusim::TierParams;

        let ladder = [PrecisionLadder::Off, PrecisionLadder::Bf16, PrecisionLadder::F16][ladder_ix];
        let a = random_spd_sparse(n, density, seed);
        let analysis = analyze(
            &a,
            OrderingKind::NestedDissection,
            Some(&AmalgamationOptions::default()),
        ).unwrap();
        let sym = &analysis.symbolic;
        let bound = in_core_bytes(sym, 4);
        let budget = (bound * frac_pct / 100).max(min_feasible_budget(sym, 4));
        let tiers = TierParams::default();
        let plan = plan_ooc(sym, 4, budget, ladder, &tiers).unwrap();

        prop_assert!(!plan.events.is_empty());
        for ev in &plan.events {
            prop_assert!(
                ev.resident_bytes <= budget,
                "event {:?} at rank {} holds {} bytes over budget {}",
                ev.kind, ev.rank, ev.resident_bytes, budget
            );
        }
        prop_assert!(plan.stats.resident_peak_bytes <= budget);
        prop_assert_eq!(plan.stats.logical_peak_bytes, bound);
        if budget >= bound {
            prop_assert!(plan.stats.traffic_bytes() == 0, "a full budget must not spill");
        }
        // Host-tier occupancy accounting balances: what is still on the
        // host at the end equals what went out minus what came back.
        prop_assert!(plan.host_used_end <= tiers.host_capacity);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// An f32 factorization under a tight budget with 16-bit spill storage
    /// still refines to f64 accuracy: the ladder's storage error stays
    /// inside what iterative refinement absorbs.
    #[test]
    fn ooc_refinement_converges_with_16bit_spill_storage(
        n in 40usize..140,
        density in 2usize..7,
        seed in 0u64..200,
        frac_pct in 30usize..70,
        ladder_ix in 0usize..2,
    ) {
        use gpu_multifrontal::core::{in_core_bytes, min_feasible_budget, PrecisionLadder};

        let ladder = [PrecisionLadder::Bf16, PrecisionLadder::F16][ladder_ix];
        let a = random_spd_sparse(n, density, seed);
        let analysis = analyze(
            &a,
            OrderingKind::NestedDissection,
            Some(&AmalgamationOptions::default()),
        ).unwrap();
        let sym = &analysis.symbolic;
        let budget = (in_core_bytes(sym, 4) * frac_pct / 100)
            .max(min_feasible_budget(sym, 4));
        let opts = SolverOptions {
            ordering: OrderingKind::NestedDissection,
            amalgamation: Some(AmalgamationOptions::default()),
            factor: FactorOptions {
                memory_budget: Some(budget),
                ladder,
                ..Default::default()
            },
            precision: Precision::F32,
            analysis_workers: 0,
        };
        let mut machine = Machine::paper_node();
        let solver = SpdSolver::new(&a, &mut machine, &opts).expect("diag-dominant ⇒ SPD");
        let (_, b) = gpu_multifrontal::matgen::rhs_for_solution(&a, seed ^ 0x5A5A);
        let sol = solver.solve_refined(&b, 10, 1e-12).unwrap();
        prop_assert!(
            sol.converged,
            "{ladder:?} at {frac_pct}% budget failed to refine: {:?}",
            sol.residual_history
        );
    }
}
