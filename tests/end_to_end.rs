//! End-to-end integration: analysis → factorization → solve → refinement
//! across matrix families, orderings, policies and precisions.

use gpu_multifrontal::core::{FactorOptions, PolicySelector};
use gpu_multifrontal::matgen::{
    elasticity_3d, laplacian_2d, laplacian_3d, random_spd_sparse, rhs_for_solution, Stencil,
};
use gpu_multifrontal::prelude::*;
use gpu_multifrontal::sparse::AmalgamationOptions;

fn solve_and_check(a: &SymCsc<f64>, opts: &SolverOptions, tol: f64) {
    let mut machine = Machine::paper_node();
    let solver = SpdSolver::new(a, &mut machine, opts).expect("SPD matrix must factor");
    let (xtrue, b) = rhs_for_solution(a, 11);
    let sol = solver.solve_refined(&b, 5, 1e-13).unwrap();
    let err = sol.x.iter().zip(&xtrue).map(|(p, q)| (p - q).abs()).fold(0.0f64, f64::max);
    assert!(err < tol, "forward error {err:.3e} exceeds {tol:.0e}");
    assert!(solver.factor_time() > 0.0);
}

fn opts(selector: PolicySelector, precision: Precision) -> SolverOptions {
    SolverOptions {
        ordering: OrderingKind::NestedDissection,
        amalgamation: Some(AmalgamationOptions::default()),
        factor: FactorOptions { selector, ..Default::default() },
        precision,
        analysis_workers: 0,
    }
}

#[test]
fn all_policies_all_matrix_families() {
    let matrices: Vec<SymCsc<f64>> = vec![
        laplacian_2d(15, 17, Stencil::Faces),
        laplacian_3d(7, 8, 6, Stencil::Full),
        elasticity_3d(5, 4, 4),
        random_spd_sparse(400, 8, 3),
    ];
    for a in &matrices {
        for p in PolicyKind::ALL {
            solve_and_check(a, &opts(PolicySelector::Fixed(p), Precision::F32), 1e-7);
        }
    }
}

#[test]
fn every_ordering_works_end_to_end() {
    let a = laplacian_3d(6, 7, 8, Stencil::Faces);
    for ordering in [
        OrderingKind::Natural,
        OrderingKind::Rcm,
        OrderingKind::MinimumDegree,
        OrderingKind::NestedDissection,
    ] {
        let o = SolverOptions {
            ordering,
            amalgamation: Some(AmalgamationOptions::default()),
            factor: FactorOptions {
                selector: PolicySelector::Baseline(BaselineThresholds::default()),
                ..Default::default()
            },
            precision: Precision::F32,
            analysis_workers: 0,
        };
        solve_and_check(&a, &o, 1e-7);
    }
}

#[test]
fn f64_cpu_solver_is_direct_precision() {
    let a = laplacian_3d(8, 8, 8, Stencil::Faces);
    let mut machine = Machine::paper_node();
    let o = opts(PolicySelector::Fixed(PolicyKind::P1), Precision::F64);
    let solver = SpdSolver::new(&a, &mut machine, &o).unwrap();
    let (xtrue, b) = rhs_for_solution(&a, 5);
    let x = solver.solve(&b).unwrap(); // no refinement needed
    let err = x.iter().zip(&xtrue).map(|(p, q)| (p - q).abs()).fold(0.0f64, f64::max);
    assert!(err < 1e-9, "f64 direct solve error {err:.3e}");
}

#[test]
fn f32_needs_refinement_f64_does_not() {
    // The paper's single-precision story, measured quantitatively.
    let a = laplacian_3d(9, 8, 7, Stencil::Full);
    let mut machine = Machine::paper_node();
    let s32 = SpdSolver::new(
        &a,
        &mut machine,
        &opts(PolicySelector::Fixed(PolicyKind::P4), Precision::F32),
    )
    .unwrap();
    let (_, b) = rhs_for_solution(&a, 2);
    let refined = s32.solve_refined(&b, 5, 1e-14).unwrap();
    assert!(refined.residual_history[0] > 1e-9, "f32 must start imprecise");
    assert!(*refined.residual_history.last().unwrap() < 1e-13, "refinement must converge");
    assert!(refined.iterations <= 3);
}

#[test]
fn amalgamation_changes_structure_not_solution() {
    let a = laplacian_3d(6, 6, 6, Stencil::Faces);
    let (xtrue, b) = rhs_for_solution(&a, 9);
    for amalg in [None, Some(AmalgamationOptions::default())] {
        let o = SolverOptions {
            ordering: OrderingKind::NestedDissection,
            amalgamation: amalg,
            factor: FactorOptions {
                selector: PolicySelector::Fixed(PolicyKind::P1),
                ..Default::default()
            },
            precision: Precision::F64,
            analysis_workers: 0,
        };
        let mut machine = Machine::paper_node();
        let solver = SpdSolver::new(&a, &mut machine, &o).unwrap();
        let x = solver.solve(&b).unwrap();
        let err = x.iter().zip(&xtrue).map(|(p, q)| (p - q).abs()).fold(0.0f64, f64::max);
        assert!(err < 1e-9);
    }
}

#[test]
fn cpu_only_machine_runs_gpu_selectors_via_fallback() {
    let a = laplacian_2d(12, 12, Stencil::Faces);
    let mut machine = Machine::cpu_only(gpu_multifrontal::gpusim::xeon_5160_core());
    let o = opts(PolicySelector::Fixed(PolicyKind::P4), Precision::F32);
    let solver = SpdSolver::new(&a, &mut machine, &o).unwrap();
    let (xtrue, b) = rhs_for_solution(&a, 4);
    let sol = solver.solve_refined(&b, 4, 1e-12).unwrap();
    let err = sol.x.iter().zip(&xtrue).map(|(p, q)| (p - q).abs()).fold(0.0f64, f64::max);
    assert!(err < 1e-8);
    // Every call degraded to P1.
    // (No stats requested here; the correctness of the degradation is the point.)
}

#[test]
fn tiny_and_degenerate_systems() {
    // 1×1 system.
    let mut t = Triplet::new(1);
    t.push(0, 0, 4.0);
    let a = t.assemble();
    let mut machine = Machine::paper_node();
    let solver = SpdSolver::new(
        &a,
        &mut machine,
        &opts(PolicySelector::Fixed(PolicyKind::P1), Precision::F64),
    )
    .unwrap();
    let x = solver.solve(&[8.0]).unwrap();
    assert!((x[0] - 2.0).abs() < 1e-12);

    // Diagonal system.
    let mut t = Triplet::new(5);
    for i in 0..5 {
        t.push(i, i, (i + 1) as f64);
    }
    let a = t.assemble();
    let mut machine = Machine::paper_node();
    let solver = SpdSolver::new(
        &a,
        &mut machine,
        &opts(PolicySelector::Fixed(PolicyKind::P2), Precision::F32),
    )
    .unwrap();
    let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
    let x = solver.solve(&b).unwrap();
    for (i, &xi) in x.iter().enumerate() {
        assert!((xi - 1.0).abs() < 1e-5, "x[{i}] = {xi}");
    }
}

#[test]
fn indefinite_matrix_rejected_cleanly() {
    let mut t = Triplet::new(4);
    t.push(0, 0, 1.0);
    t.push(1, 1, -1.0);
    t.push(2, 2, 1.0);
    t.push(3, 3, 1.0);
    let a = t.assemble();
    let mut machine = Machine::paper_node();
    let r = SpdSolver::new(
        &a,
        &mut machine,
        &opts(PolicySelector::Fixed(PolicyKind::P1), Precision::F64),
    );
    assert!(r.is_err(), "indefinite matrix must be rejected");
}

#[test]
fn simulated_time_deterministic_across_runs() {
    let a = laplacian_3d(6, 6, 6, Stencil::Faces);
    let o = opts(PolicySelector::Baseline(BaselineThresholds::default()), Precision::F32);
    let t: Vec<f64> = (0..2)
        .map(|_| {
            let mut machine = Machine::paper_node();
            SpdSolver::new(&a, &mut machine, &o).unwrap().factor_time()
        })
        .collect();
    assert_eq!(t[0], t[1], "simulation must be bit-deterministic");
}
