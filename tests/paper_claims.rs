//! Quantitative checks of the paper's headline claims on the simulated
//! machine — the automated counterpart of EXPERIMENTS.md.

use gpu_multifrontal::autotune::{train, Dataset, TrainOptions};
use gpu_multifrontal::core::{
    estimate_fu_time, factor_permuted, simulate_tree_schedule, FactorOptions, MoldableModel,
    PolicySelector,
};
use gpu_multifrontal::dense::FuFlops;
use gpu_multifrontal::gpusim::{tesla_t10, xeon_5160_core};
use gpu_multifrontal::matgen::{laplacian_3d, Stencil};
use gpu_multifrontal::prelude::*;
use gpu_multifrontal::sparse::symbolic::analyze;
use gpu_multifrontal::sparse::AmalgamationOptions;

fn policy_stats(
    a32: &SymCsc<f32>,
    analysis: &gpu_multifrontal::sparse::Analysis,
    selector: PolicySelector,
) -> gpu_multifrontal::core::FactorStats {
    let mut machine = Machine::paper_node();
    let opts = FactorOptions { selector, record_stats: true, ..Default::default() };
    factor_permuted(a32, &analysis.symbolic, &analysis.perm, &mut machine, &opts).expect("SPD").1
}

/// Table III: asymptotic rates within 1 % of the paper's values.
#[test]
fn table3_rates_match_paper() {
    let cpu = xeon_5160_core();
    let gpu = tesla_t10();
    let big = 1e13;
    for (got, want) in [
        (cpu.kernels.potrf.rate(big) / 1e9, 8.84),
        (cpu.kernels.trsm.rate(big) / 1e9, 9.24),
        (cpu.kernels.syrk.rate(big) / 1e9, 10.02),
        (gpu.kernels.trsm.rate(big) / 1e9, 153.7),
        (gpu.kernels.syrk.rate(big) / 1e9, 159.69),
    ] {
        assert!((got / want - 1.0).abs() < 0.01, "rate {got:.2} vs paper {want}");
    }
}

/// §IV-A: the overwhelming majority of F-U calls are small.
#[test]
fn most_calls_are_small() {
    let a = laplacian_3d(16, 16, 16, Stencil::Faces);
    let analysis =
        analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default())).unwrap();
    let a32: SymCsc<f32> = analysis.permuted.0.cast();
    let st = policy_stats(&a32, &analysis, PolicySelector::Fixed(PolicyKind::P1));
    let small = st.records.iter().filter(|r| r.k <= 500 && r.m <= 1000).count();
    let frac = small as f64 / st.records.len() as f64;
    assert!(frac > 0.9, "small-call fraction {frac:.2} (paper: ~0.97)");
    // …yet their share of the *time* is far below their share of the call
    // count (the concentration Figure 2 illustrates). Scale-free version of
    // the claim: time concentrates in the large calls.
    let tiny: Vec<_> = st.records.iter().filter(|r| r.k <= 64 && r.m <= 128).collect();
    let t_tiny: f64 = tiny.iter().map(|r| r.total).sum();
    let t_total: f64 = st.records.iter().map(|r| r.total).sum();
    let count_share = tiny.len() as f64 / st.records.len() as f64;
    let time_share = t_tiny / t_total;
    assert!(
        time_share < count_share * 0.95,
        "time share {time_share:.2} not concentrated vs count share {count_share:.2}"
    );
}

/// Table V: the GPU panel algorithm accelerates root-front potrf by ~7–13×.
#[test]
fn panel_potrf_speedup_in_paper_band() {
    let mut machine = Machine::paper_node();
    for k in [2000usize, 5400, 10000] {
        let t_cpu = estimate_fu_time(&mut machine, 0, k, PolicyKind::P1, 64, false);
        let t_gpu = estimate_fu_time(&mut machine, 0, k, PolicyKind::P4, 64, false);
        let sp = t_cpu / t_gpu;
        assert!((4.0..20.0).contains(&sp), "k={k}: panel potrf speedup {sp:.1} (paper 7.7–13.1)");
    }
}

/// Figures 10/11: the per-call best policy progresses P1 → … → P4 with size.
#[test]
fn policy_progression_with_size() {
    let mut machine = Machine::paper_node();
    let mut best = |m: usize, k: usize| {
        PolicyKind::ALL
            .into_iter()
            .min_by(|&a, &b| {
                estimate_fu_time(&mut machine, m, k, a, 64, false).total_cmp(&estimate_fu_time(
                    &mut machine,
                    m,
                    k,
                    b,
                    64,
                    false,
                ))
            })
            .unwrap()
    };
    assert_eq!(best(20, 10), PolicyKind::P1, "tiny fronts belong on the CPU");
    let large = best(8000, 2000);
    assert!(large == PolicyKind::P3 || large == PolicyKind::P4, "huge fronts belong on the GPU");
    // Monotonicity proxy: P1's relative penalty grows with size.
    let mut pen = |m: usize, k: usize| {
        estimate_fu_time(&mut machine, m, k, PolicyKind::P1, 64, false)
            / estimate_fu_time(&mut machine, m, k, PolicyKind::P4, 64, false)
    };
    assert!(pen(200, 100) < pen(2000, 800));
    assert!(pen(2000, 800) < pen(8000, 3000));
}

/// §VI-C: the trained model hybrid comes within a few percent of the ideal
/// hybrid and beats every fixed policy.
#[test]
fn model_hybrid_near_ideal() {
    let a = laplacian_3d(14, 14, 14, Stencil::Full);
    let analysis =
        analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default())).unwrap();
    let a32: SymCsc<f32> = analysis.permuted.0.cast();
    let stats: Vec<_> = PolicyKind::ALL
        .into_iter()
        .map(|p| policy_stats(&a32, &analysis, PolicySelector::Fixed(p)))
        .collect();
    let dataset = Dataset::from_policy_runs(&[&stats[0], &stats[1], &stats[2], &stats[3]]);
    let model = train(&dataset, &TrainOptions::default());

    let ideal = policy_stats(&a32, &analysis, PolicySelector::Oracle(dataset.oracle_table()));
    let modelr = policy_stats(&a32, &analysis, PolicySelector::Model(model));
    assert!(
        modelr.total_time < ideal.total_time * 1.10,
        "model {:.4} vs ideal {:.4} — must be within 10 % (paper: ~2 %)",
        modelr.total_time,
        ideal.total_time
    );
    for (p, st) in PolicyKind::ALL.iter().zip(&stats) {
        assert!(
            modelr.total_time <= st.total_time * 1.001,
            "model hybrid must not lose to fixed {p}"
        );
    }
}

/// Table VII column ordering: P2 < P3 (< P4 at our calibration), hybrids on
/// top, multi-worker above single-worker.
#[test]
fn speedup_ordering_matches_paper() {
    // Needs a matrix large enough for GPU policies to pay off at all
    // (N ≈ 14k; the paper's are ~1M).
    let a = laplacian_3d(24, 24, 24, Stencil::Full);
    let analysis =
        analyze(&a, OrderingKind::NestedDissection, Some(&AmalgamationOptions::default())).unwrap();
    let a32: SymCsc<f32> = analysis.permuted.0.cast();
    let stats: Vec<_> = PolicyKind::ALL
        .into_iter()
        .map(|p| policy_stats(&a32, &analysis, PolicySelector::Fixed(p)))
        .collect();
    let t1 = stats[0].total_time;
    let sp: Vec<f64> = stats.iter().map(|s| t1 / s.total_time).collect();
    assert!(sp[1] > 1.0, "P2 must beat serial: {sp:?}");
    assert!(sp[2] > sp[1], "P3 must beat P2: {sp:?}");
    assert!(sp[3] > sp[2], "P4 must beat P3 at our calibration: {sp:?}");

    // Ideal hybrid ≥ best fixed.
    let dataset = Dataset::from_policy_runs(&[&stats[0], &stats[1], &stats[2], &stats[3]]);
    let ideal = policy_stats(&a32, &analysis, PolicySelector::Oracle(dataset.oracle_table()));
    let sp_ideal = t1 / ideal.total_time;
    assert!(sp_ideal * 1.001 >= sp[3], "ideal {sp_ideal} vs best fixed {}", sp[3]);

    // 4 CPU workers give a speedup in the paper's band; 2 hybrid workers
    // beat 1.
    let nsn = analysis.symbolic.num_supernodes();
    let (mut d, mut o) = (vec![0.0; nsn], vec![0.0; nsn]);
    for r in &stats[0].records {
        d[r.sn] = r.total;
        o[r.sn] = FuFlops::new(r.m, r.k).total();
    }
    let s4 = simulate_tree_schedule(&analysis.symbolic, &d, &o, 4, Some(MoldableModel::default()));
    assert!(s4.speedup() > 2.0 && s4.speedup() < 4.2, "4-thread speedup {}", s4.speedup());
}

/// The model adapts when the device changes (the paper's portability claim):
/// retraining on Fermi-like timings shifts policy boundaries toward the GPU.
#[test]
fn adapts_to_faster_device() {
    use gpu_multifrontal::gpusim::fermi_like;
    let mut t10 = Machine::paper_node();
    let mut fermi = Machine::with_gpu(xeon_5160_core(), fermi_like());
    // At a mid-size front the faster device must shorten GPU policies.
    let t_t10 = estimate_fu_time(&mut t10, 600, 200, PolicyKind::P4, 64, false);
    let t_fermi = estimate_fu_time(&mut fermi, 600, 200, PolicyKind::P4, 64, false);
    assert!(t_fermi < t_t10, "Fermi-like must be faster: {t_fermi} vs {t_t10}");
    // And the P1/P4 crossover moves to smaller sizes.
    let cross = |machine: &mut Machine| {
        for i in 1..100 {
            let k = i * 8;
            let m = 2 * k;
            if estimate_fu_time(machine, m, k, PolicyKind::P4, 64, false)
                < estimate_fu_time(machine, m, k, PolicyKind::P1, 64, false)
            {
                return k;
            }
        }
        usize::MAX
    };
    let c_t10 = cross(&mut t10);
    let c_fermi = cross(&mut fermi);
    assert!(c_fermi <= c_t10, "crossover must move down: fermi {c_fermi} vs t10 {c_t10}");
}
